"""Kernel timer, mirroring the paper's methodology (section 3.2).

"We enabled ATLAS's assembly-coded walltimer that accesses hardware
performance counters in order to get cycle-accurate results.  Since
walltime is prone to outside interference, each timing was repeated six
times (on an unloaded machine), and the minimum was taken."

The simulated machine is deterministic, so to keep the methodology
honest (and the min-of-6 protocol meaningful) the timer injects a small
deterministic pseudo-noise — multiplicative, ~0.3% — seeded from the
kernel identity.  The *minimum* over repetitions is reported, exactly
like the paper.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..fko.pipeline import CompiledKernel
from ..hil.tiling import NestInfo, nest_info
from ..util import LRUCache, check_schema
from ..kernels.blas1 import KernelSpec
from ..machine.blocking import nest_cycles
from ..machine.config import MachineConfig
from ..machine.loopinfo import LoopSummary, summarize
from ..machine.timing import Context, LoopTimer, TimingResult


@dataclass
class KernelTiming:
    """Result of timing one kernel configuration."""

    cycles: float                     # min over repetitions
    seconds: float
    mflops: float
    n: int
    machine: str
    context: Context
    samples: List[float] = field(default_factory=list)
    raw: Optional[TimingResult] = None

    def __repr__(self) -> str:
        return (f"<{self.machine}/{self.context.value} N={self.n}: "
                f"{self.cycles:.0f} cy, {self.mflops:.1f} MFLOPS>")

    # -- JSON round-trip (evaluation cache, checkpoints) ----------------
    # ``raw`` (the per-level TimingResult breakdown) is derived data and
    # is not serialized; a reloaded timing carries ``raw=None``.
    def to_dict(self) -> dict:
        return {"schema": 1,
                "cycles": self.cycles, "seconds": self.seconds,
                "mflops": self.mflops, "n": self.n, "machine": self.machine,
                "context": self.context.value,
                "samples": [float(s) for s in self.samples]}

    @staticmethod
    def from_dict(data: dict) -> "KernelTiming":
        check_schema(data, "KernelTiming")
        return KernelTiming(cycles=float(data["cycles"]),
                            seconds=float(data["seconds"]),
                            mflops=float(data["mflops"]),
                            n=int(data["n"]), machine=data["machine"],
                            context=Context(data["context"]),
                            samples=[float(s) for s in
                                     data.get("samples", [])])


class Timer:
    def __init__(self, machine: MachineConfig, context: Context,
                 n: int, repeats: int = 6, noise: float = 0.003,
                 fast: bool = True):
        self.machine = machine
        self.context = context
        self.n = n
        self.repeats = repeats
        self.noise = noise
        self.fast = fast
        self._loop_timer = LoopTimer(machine, context, fast=fast)
        #: base (pre-noise) walk results keyed by a caller-supplied share
        #: key.  A share key asserts "this summary's content is identical
        #: to every other summary passed under the same key" — the engine
        #: uses FKO's complete effective-parameter key, which determines
        #: the compiled IR (and hence the summary) bit for bit.  Walks
        #: are pure functions of (summary, machine, context, n, fast),
        #: so serving a cached walk is bit-identical to re-walking.
        self._base_cache = LRUCache(maxsize=256)
        self.base_hits = 0
        self.base_misses = 0

    # -- the two halves of one timing ----------------------------------
    def base(self, summary: LoopSummary,
             share_key: Optional[Hashable] = None) -> TimingResult:
        """The deterministic walk (no noise), optionally memoized under
        ``share_key`` (see ``_base_cache``)."""
        if share_key is None:
            return self._loop_timer.time(summary, self.n)
        hit = self._base_cache.get(share_key)
        if hit is not None:
            self.base_hits += 1
            return hit
        self.base_misses += 1
        result = self._loop_timer.time(summary, self.n)
        self._base_cache.put(share_key, result)
        return result

    def base_nest(self, summary: LoopSummary, nest: NestInfo,
                  tiles: dict, share_key: Optional[Hashable] = None
                  ) -> TimingResult:
        """The analytic blocked-nest walk (no noise) for a kernel whose
        tuned loop is the innermost level of a full loop nest — the
        per-line walk cannot cover O(N^3) traffic, so the capacity-miss
        model of :mod:`repro.machine.blocking` replaces it.  Memoized
        under ``share_key`` exactly like :meth:`base` (a share key
        pins the tiled source, so tiles are part of the identity)."""
        if share_key is None:
            return nest_cycles(summary, nest, tiles, self.machine,
                               self.context, self.n)
        hit = self._base_cache.get(share_key)
        if hit is not None:
            self.base_hits += 1
            return hit
        self.base_misses += 1
        result = nest_cycles(summary, nest, tiles, self.machine,
                             self.context, self.n)
        self._base_cache.put(share_key, result)
        return result

    def peek_base(self, share_key: Optional[Hashable]) -> \
            Optional[TimingResult]:
        """The memoized walk for ``share_key``, or None.  Lets callers
        skip producing the summary entirely when the walk is already
        cached — under a share key, an identical summary is guaranteed,
        so the skipped work could not have changed the result."""
        if share_key is None:
            return None
        hit = self._base_cache.get(share_key)
        if hit is not None:
            self.base_hits += 1
        return hit

    def finish(self, base: TimingResult, flops: float,
               ident: str = "") -> KernelTiming:
        """Apply the identity-seeded measurement noise and the paper's
        min-of-``repeats`` protocol to a base walk.  The draws are one
        vectorized ``normal(0, noise, repeats)`` call — bitwise equal to
        ``repeats`` sequential scalar draws from the same generator."""
        seed = zlib.crc32(
            f"{ident}|{self.machine.name}|{self.context.value}|{self.n}"
            .encode()) & 0xFFFFFFFF
        rng = np.random.default_rng(seed)
        draws = rng.normal(0, self.noise, self.repeats)
        samples = [float(c)
                   for c in base.cycles * (1.0 + np.abs(draws))]
        cycles = min(samples)
        seconds = cycles / self.machine.freq_hz
        mflops = (flops / seconds / 1e6) if seconds > 0 else 0.0
        return KernelTiming(cycles=cycles, seconds=seconds, mflops=mflops,
                            n=self.n, machine=self.machine.name,
                            context=self.context, samples=samples, raw=base)

    # -- public timing API ---------------------------------------------
    def time_summary(self, summary: LoopSummary, flops: float,
                     ident: str = "",
                     share_key: Optional[Hashable] = None) -> KernelTiming:
        return self.finish(self.base(summary, share_key), flops, ident)

    def time_summaries(self, batch: Sequence[Tuple[LoopSummary, float, str]],
                       share_keys: Optional[Sequence[Optional[Hashable]]]
                       = None) -> List[KernelTiming]:
        """Time a batch of ``(summary, flops, ident)`` candidates.

        Candidates sharing a ``share_keys`` entry share one walk (the
        batched steady-state replay); each still gets its own
        identity-seeded noise stream, so results are bit-identical to
        timing every candidate individually — batching only removes
        redundant walks, never changes a number."""
        if share_keys is None:
            share_keys = [None] * len(batch)
        return [self.finish(self.base(summary, key), flops, ident)
                for (summary, flops, ident), key in zip(batch, share_keys)]

    def time(self, compiled: CompiledKernel, spec: KernelSpec) -> KernelTiming:
        summary = summarize(compiled.fn)
        ident = f"{spec.name}|{compiled.params.key()}"
        nest = nest_info(spec.hil) if spec.nest_timing else None
        if nest is not None:
            tiles = (compiled.params.tiles()
                     if compiled.params is not None else {})
            return self.finish(self.base_nest(summary, nest, tiles),
                               spec.flops(self.n), ident)
        return self.time_summary(summary, spec.flops(self.n), ident=ident)

    def cache_stats(self) -> dict:
        """Walk-reuse counters for the batched-evaluation path."""
        return {"base_hits": self.base_hits, "base_misses": self.base_misses}


def paper_n(context: Context) -> int:
    """The paper's problem sizes: N=80000 out of cache, N=1024 in-L2."""
    return 80000 if context is Context.OUT_OF_CACHE else 1024
