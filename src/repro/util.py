"""Small shared utilities."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional


class LRUCache:
    """A minimal bounded mapping with least-recently-used eviction.

    Used to memoize expensive per-key construction (front-end lowering,
    per-worker tool kits) without letting long batch runs grow the memo
    without bound.
    """

    __slots__ = ("maxsize", "_data", "hits", "misses")

    def __init__(self, maxsize: int):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        while len(data) > self.maxsize:
            data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()
