"""Small shared utilities."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional


class LRUCache:
    """A minimal bounded mapping with least-recently-used eviction.

    Used to memoize expensive per-key construction (front-end lowering,
    per-worker tool kits) without letting long batch runs grow the memo
    without bound.
    """

    __slots__ = ("maxsize", "_data", "hits", "misses")

    def __init__(self, maxsize: int):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        while len(data) > self.maxsize:
            data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()


# ---------------------------------------------------------------------------
# serialization schema versioning

#: current schema of every ``to_dict`` payload (TunedKernel,
#: SearchResult, TransformParams, KernelTiming).  Bump only when a
#: payload changes shape incompatibly; readers accept anything <= this.
SCHEMA_VERSION = 1


def check_schema(data: dict, what: str) -> int:
    """Validate the ``schema`` field of a serialized payload.

    Missing means schema 1 (every pre-versioning payload), so old
    caches, checkpoints and result stores keep loading.  A schema from
    the future is an error — silently misreading it would be worse.
    """
    schema = data.get("schema", 1)
    try:
        schema = int(schema)
    except (TypeError, ValueError):
        raise ValueError(f"{what}: bad schema field {schema!r}")
    if not 1 <= schema <= SCHEMA_VERSION:
        raise ValueError(f"{what}: unsupported schema {schema} "
                         f"(this build reads <= {SCHEMA_VERSION})")
    return schema
