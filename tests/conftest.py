"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fko import FKO
from repro.kernels import get_kernel
from repro.machine import opteron, pentium4e


@pytest.fixture(scope="session")
def p4e():
    return pentium4e()


@pytest.fixture(scope="session")
def opt():
    return opteron()


@pytest.fixture(scope="session")
def machines(p4e, opt):
    return (p4e, opt)


@pytest.fixture
def rng():
    return np.random.default_rng(0xBEEF)


DDOT_SRC = """
ROUTINE ddot(N: int, X: ptr double, Y: ptr double) RETURNS double;
double dot = 0.0;
double x;
double y;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    y = Y[0];
    dot += x * y;
    X += 1;
    Y += 1;
LOOP_END
RETURN dot;
"""

IAMAX_SRC = """
ROUTINE idamax(N: int, X: ptr double) RETURNS int;
double amax;
double x;
int imax = 0;
amax = X[0];
amax = ABS amax;
@TUNE
LOOP i = N, 0, -1
LOOP_BODY
    x = X[0];
    x = ABS x;
    IF (x > amax) GOTO NEWMAX;
ENDOFLOOP:
    X += 1;
LOOP_END
RETURN imax;
NEWMAX:
    amax = x;
    imax = N - i;
    GOTO ENDOFLOOP;
"""


@pytest.fixture(scope="session")
def ddot_src():
    return DDOT_SRC


@pytest.fixture(scope="session")
def iamax_src():
    return IAMAX_SRC


@pytest.fixture(scope="session")
def ddot_spec():
    return get_kernel("ddot")


@pytest.fixture
def fko_p4e(p4e):
    return FKO(p4e)


@pytest.fixture
def fko_opt(opt):
    return FKO(opt)
