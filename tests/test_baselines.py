"""Tests for the modeled native compilers and the ATLAS baseline."""

import numpy as np
import pytest

from repro.atlas import (atlas_search, build_dual_indexed_copy,
                         build_vector_iamax, variants_for)
from repro.kernels import get_kernel
from repro.machine import Context, run_function
from repro.refcomp import ALL_COMPILERS, Gcc, Icc, IccProf, get_compiler
from repro.timing.tester import test_function as check_function

N = 20000


class TestModeledCompilers:
    def test_registry(self):
        names = {c.name for c in ALL_COMPILERS}
        assert names == {"gcc", "icc", "icc+prof"}
        assert get_compiler("gcc").name == "gcc"
        with pytest.raises(KeyError):
            get_compiler("msvc")

    def test_gcc_never_vectorizes(self, p4e):
        spec = get_kernel("ddot")
        k = Gcc().compile(spec, p4e, Context.OUT_OF_CACHE, N)
        assert "sv" not in k.applied

    def test_icc_vectorizes_canonical_form(self, p4e):
        spec = get_kernel("ddot")
        k = Icc().compile(spec, p4e, Context.OUT_OF_CACHE, N,
                          modified_source=True)
        assert k.applied.get("sv")

    def test_icc_refuses_downcount_form(self, p4e):
        # "icc will not vectorize either form" until sources are modified
        spec = get_kernel("ddot")
        k = Icc().compile(spec, p4e, Context.OUT_OF_CACHE, N,
                          modified_source=False)
        assert "sv" not in k.applied

    def test_icc_prefetches_on_p4e_not_stores_on_opteron(self, p4e, opt):
        spec = get_kernel("dswap")
        fko_params_p4e = Icc().decide(spec, _analysis(spec, p4e), p4e,
                                      Context.OUT_OF_CACHE, N)
        fko_params_opt = Icc().decide(spec, _analysis(spec, opt), opt,
                                      Context.OUT_OF_CACHE, N)
        assert fko_params_p4e.pf("X").enabled
        assert fko_params_p4e.pf("Y").enabled
        assert not fko_params_opt.pf("X").enabled  # X is read+written

    def test_iccprof_blind_wnt_long_loops_only(self, opt):
        spec = get_kernel("dswap")
        a = _analysis(spec, opt)
        long_p = IccProf().decide(spec, a, opt, Context.OUT_OF_CACHE, 80000)
        short_p = IccProf().decide(spec, a, opt, Context.IN_L2, 1024)
        assert long_p.wnt and not short_p.wnt

    def test_reference_builds_are_correct(self, p4e):
        for cname in ("gcc", "icc", "icc+prof"):
            comp = get_compiler(cname)
            for kname in ("ddot", "dswap", "idamax"):
                spec = get_kernel(kname)
                k = comp.compile(spec, p4e, Context.OUT_OF_CACHE, N)
                check_function(k.fn, spec, sizes=(0, 3, 17, 64))

    def test_flags_match_paper_table2(self, p4e, opt):
        assert "-xP" in Icc().flags(p4e)
        assert "-xW" in Icc().flags(opt)
        assert "funroll-all-loops" in Gcc().flags(p4e)


def _analysis(spec, machine):
    from repro.fko import FKO
    return FKO(machine).analyze(spec.hil)


class TestHandTuned:
    @pytest.mark.parametrize("kname", ["isamax", "idamax"])
    @pytest.mark.parametrize("unroll", [1, 2, 4])
    def test_vector_iamax_correct(self, kname, unroll):
        spec = get_kernel(kname)
        fn = build_vector_iamax(spec, unroll=unroll)
        check_function(fn, spec, sizes=(0, 1, 2, 3, 7, 8, 9, 33, 100))

    def test_vector_iamax_first_occurrence_on_ties(self):
        spec = get_kernel("idamax")
        fn = build_vector_iamax(spec, unroll=2)
        X = np.array([1.0, -7.0, 7.0, 7.0, 2.0, 1.0, 0.0, 3.0])
        res = run_function(fn, {"X": X}, {"N": len(X)})
        assert res.ret == 1

    @pytest.mark.parametrize("nt", [False, True])
    def test_dual_indexed_copy_correct(self, nt):
        spec = get_kernel("scopy")
        fn = build_dual_indexed_copy(spec, unroll=4, nontemporal=nt)
        check_function(fn, spec, sizes=(0, 1, 15, 16, 17, 100))

    def test_dual_indexed_copy_single_integer_update(self):
        from repro.ir import Opcode
        spec = get_kernel("dcopy")
        fn = build_dual_indexed_copy(spec, unroll=4)
        body = fn.block("body")
        adds = [i for i in body.instrs if i.op is Opcode.ADD]
        assert len(adds) == 1  # the CISC dual-indexing payoff


class TestAtlasSearch:
    def test_variant_library_shape(self, p4e):
        spec = get_kernel("dcopy")
        names = {v.name for v in variants_for(spec, p4e,
                                              Context.OUT_OF_CACHE)}
        assert {"c-ref", "c-pf", "asm", "asm-hand"} <= names

    def test_opteron_has_no_dated_asm_variants(self, opt):
        spec = get_kernel("ddot")
        for v in variants_for(spec, opt, Context.OUT_OF_CACHE):
            if v.name == "asm":
                assert v.candidates == []

    def test_search_returns_best_of_all_timings(self, p4e):
        spec = get_kernel("ddot")
        res = atlas_search(spec, p4e, Context.OUT_OF_CACHE, N,
                           run_tester=False)
        assert res.timing.cycles == min(c for _, c in res.all_timings)
        assert res.n_candidates == len(res.all_timings)

    def test_winner_passes_tester(self, p4e):
        spec = get_kernel("dswap")
        atlas_search(spec, p4e, Context.OUT_OF_CACHE, N, run_tester=True)

    def test_iamax_selects_hand_vectorized(self, p4e):
        res = atlas_search(get_kernel("isamax"), p4e, Context.OUT_OF_CACHE,
                           N, run_tester=False)
        assert res.best_label.startswith("asm-simd")
        assert res.is_assembly
        assert res.display_name == "isamax*"

    def test_p4e_dcopy_selects_block_fetch(self, p4e):
        res = atlas_search(get_kernel("dcopy"), p4e, Context.OUT_OF_CACHE,
                           N, run_tester=False)
        assert res.best_label.startswith("asm-hand")
