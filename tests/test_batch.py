"""Batched candidate evaluation: bit-identity, sharing, validation.

The batched evaluator's contract is that batching is an evaluation
*throughput* optimization only: prefix-memoized compilation, shared
steady-state walks and grouped dispatch must never change a single
cycle count, history entry or cache key.  These tests pin that contract
from four sides — end-to-end search identity across strategies, jobs
and observation; bitwise timer sharing; compile-cache aliasing safety;
and the grouping/validation plumbing around them.
"""

import dataclasses
import hashlib
import json

import pytest

from repro.fko import FKO, TransformParams
from repro.ir.printer import canonical_function_text
from repro.kernels import get_kernel
from repro.machine import Context, get_machine
from repro.machine.loopinfo import summarize
from repro.qa import run_fuzz
from repro.search import TuneConfig, TuningSession, build_space, make_searcher
from repro.search.evalcache import eval_key
from repro.timing.timer import Timer

STRATEGIES = ("line", "random", "anneal", "genetic")


def _run(strategy, **cfg_kw):
    """One daxpy/opteron search; returns (best cycles, history digest)."""
    cfg = TuneConfig(strategy=strategy, max_evals=10, seed=7,
                     run_tester=False, **cfg_kw)
    with TuningSession(cfg) as s:
        tuned = s.tune("daxpy", "opteron", Context.OUT_OF_CACHE, 80000)
    r = tuned.search
    digest = hashlib.sha256(
        json.dumps([[p, list(k), c] for p, k, c in r.history]).encode()
    ).hexdigest()
    return r.best_cycles, digest


# ---------------------------------------------------------------------------
# end-to-end bit-identity: batched == unbatched, everywhere

class TestBatchedBitIdentity:
    """Every (strategy, jobs, batch_size, observe) combination must land
    on the same best cycles and the same evaluation history as the
    uncached, unbatched serial reference."""

    @pytest.fixture(scope="class")
    def reference(self):
        return {s: _run(s, jobs=1, batch_size=1, prefix_cache=False)
                for s in STRATEGIES}

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_batched_serial(self, reference, strategy):
        assert _run(strategy, jobs=1, batch_size=6) == reference[strategy]

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_batched_parallel_observed(self, reference, strategy):
        got = _run(strategy, jobs=2, batch_size=6, observe=True)
        assert got == reference[strategy]

    def test_parallel_unbatched(self, reference):
        assert _run("genetic", jobs=2, batch_size=1) == reference["genetic"]

    def test_batch_stats_populated(self):
        cfg = TuneConfig(strategy="genetic", max_evals=10, seed=7,
                         run_tester=False, batch_size=6)
        with TuningSession(cfg) as s:
            s.tune("daxpy", "opteron", Context.OUT_OF_CACHE, 80000)
            stats = s.stats
        assert stats.batch_groups > 0
        assert stats.batch_size_total >= stats.batch_groups
        assert stats.batch_prefix_hits + stats.batch_prefix_misses > 0


# ---------------------------------------------------------------------------
# timer sharing is bitwise

class TestTimerSharing:
    @pytest.fixture(scope="class")
    def candidates(self):
        machine = get_machine("opteron")
        fko = FKO(machine)
        spec = get_kernel("daxpy")
        out = []
        for u in (1, 4, 4):
            params = dataclasses.replace(fko.defaults(spec.hil), unroll=u)
            compiled = fko.compile(spec.hil, params)
            out.append((summarize(compiled.fn), spec.flops(80000),
                        f"{spec.name}|{params.key()}",
                        fko.share_key(spec.hil, params)))
        return machine, out

    def test_time_summaries_equals_individual_loop(self, candidates):
        """The batch API with shared walks is bitwise equal to timing
        every candidate individually with a fresh timer."""
        machine, cands = candidates
        batch_timer = Timer(machine, Context.OUT_OF_CACHE, 80000)
        batched = batch_timer.time_summaries(
            [c[:3] for c in cands], share_keys=[c[3] for c in cands])
        # the duplicated unroll=4 candidate shared one walk
        assert batch_timer.base_hits == 1
        for (summary, flops, ident, _), got in zip(cands, batched):
            solo = Timer(machine, Context.OUT_OF_CACHE, 80000)
            want = solo.time_summary(summary, flops, ident)
            assert got.to_dict() == want.to_dict()
            assert got.samples == want.samples

    def test_peek_base_only_reports_cached_walks(self, candidates):
        machine, cands = candidates
        timer = Timer(machine, Context.OUT_OF_CACHE, 80000)
        summary, _, _, key = cands[0]
        assert timer.peek_base(key) is None      # miss: caller compiles
        assert timer.peek_base(None) is None     # no share key: no reuse
        assert timer.base_misses == 0            # peeking never charges
        walk = timer.base(summary, key)
        assert timer.peek_base(key) is walk      # hit: same walk object
        assert timer.cache_stats() == {"base_hits": 1, "base_misses": 1}


# ---------------------------------------------------------------------------
# compile-cache aliasing: cached IR is never reachable from callers

class TestPrefixCacheAliasing:
    def test_mutating_a_compiled_kernel_cannot_poison_the_cache(self):
        fko = FKO(get_machine("opteron"))
        hil = get_kernel("daxpy").hil
        params = dataclasses.replace(fko.defaults(hil), unroll=4)
        first = fko.compile(hil, params)
        want = canonical_function_text(first.fn)
        # vandalize everything the caller can reach: the kernel IR, the
        # applied-transform record, even a sibling sharing the prefix
        first.fn.blocks[0].instrs.clear()
        first.fn.blocks[-1].instrs.clear()
        first.applied.clear()
        sibling = fko.compile(hil, dataclasses.replace(params, unroll=8))
        sibling.fn.blocks[0].instrs.clear()
        again = fko.compile(hil, params)
        assert canonical_function_text(again.fn) == want
        assert fko.full_hits > 0   # and it *was* served from the cache

    def test_fuzz_with_prefix_cached_compiles(self):
        """The differential fuzzer drives transformed compiles through
        memoized FKO instances — a short campaign must stay clean."""
        report = run_fuzz(seed=11, budget=10, shrink=False)
        assert report.checked == 10
        assert report.ok, [f.describe() for f in report.failures]


# ---------------------------------------------------------------------------
# ask_batch grouping is an order hint, never a semantic change

class TestAskBatchGrouping:
    @pytest.fixture()
    def searcher(self):
        machine = get_machine("p4e")
        fko = FKO(machine)
        hil = get_kernel("ddot").hil
        space = build_space(fko.analyze(hil), machine)
        return make_searcher("random", space, fko.defaults(hil),
                             max_evals=24, seed=3)

    def test_groups_are_a_permutation_of_ask(self, searcher):
        batch = searcher.ask()
        groups = searcher.ask_batch()
        flat = [p for g in groups for p in g]
        assert sorted(p.key() for p in flat) \
            == sorted(p.key() for p in batch)

    def test_group_members_share_the_default_key(self, searcher):
        for group in searcher.ask_batch():
            keys = {(p.sv, p.unroll, p.lc, p.ae) for p in group}
            assert len(keys) == 1

    def test_limit_caps_group_size(self, searcher):
        groups = searcher.ask_batch(limit=2)
        assert groups and all(len(g) <= 2 for g in groups)

    def test_custom_key_controls_grouping(self, searcher):
        groups = searcher.ask_batch(key=lambda p: p.unroll)
        unrolls = [g[0].unroll for g in groups]
        assert len(unrolls) == len(set(unrolls))
        for group in groups:
            assert len({p.unroll for p in group}) == 1

    def test_grouping_does_not_disturb_tell(self, searcher):
        batch = searcher.ask()
        searcher.ask_batch(limit=3)   # a pure query
        searcher.tell([(p, 100.0 + i) for i, p in enumerate(batch)])
        assert searcher.history[-len(batch):]


# ---------------------------------------------------------------------------
# config validation and cache-key stability

class TestConfigAndKeys:
    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError, match="batch_size"):
            TuneConfig(batch_size=0)
        with pytest.raises(ValueError, match="batch_size"):
            TuneConfig(batch_size=-4)
        assert TuneConfig(batch_size=1).batch_size == 1

    def test_eval_key_is_stable(self):
        """The eval-cache key format is load-bearing: changing it
        silently invalidates every persisted cache.  Pinned digest."""
        key = eval_key("kernel src", "opteron", "out-of-cache", 80000,
                       (("u", 4),), "v1")
        assert key == ("2b739b607a43be44ea8586d5f6a4cd55"
                       "e668cbd16db1824a186f2a803fa9a2ae")

    def test_eval_key_accepts_context_enum_or_string(self):
        a = eval_key("src", "p4e", Context.OUT_OF_CACHE, 80000, (), "v1")
        b = eval_key("src", "p4e", "out-of-cache", 80000, (), "v1")
        assert a == b

    def test_eval_key_varies_with_params(self):
        a = eval_key("src", "p4e", "out-of-cache", 80000, (("u", 2),), "v1")
        b = eval_key("src", "p4e", "out-of-cache", 80000, (("u", 4),), "v1")
        assert a != b
