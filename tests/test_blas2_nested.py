"""Tests for nested-loop (Level 2) kernels: gemv and ger.

These exercise the extension machinery: nested lowering, @TUNE on the
innermost loop, runtime pointer advances, alignment analysis, and
unaligned vector memory operations.
"""

import numpy as np
import pytest

from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import Opcode, PrefetchHint
from repro.kernels.blas2 import (BLAS2_REGISTRY, get_blas2, run_blas2)

PARAMS = [
    TransformParams(sv=False, unroll=1, lc=False),
    TransformParams(sv=True, unroll=1),
    TransformParams(sv=True, unroll=4, ae=2),
    TransformParams(sv=True, unroll=8, ae=4, wnt=True),
]

SHAPES = [(1, 1), (1, 7), (5, 1), (3, 5), (7, 23), (4, 16), (2, 64), (0, 4)]


class TestAnalysis:
    def test_gemv_inner_loop_analyzed(self, p4e):
        spec = get_blas2("dgemv")
        a = FKO(p4e).analyze(spec.hil)
        assert a.vectorizable
        assert [r.name for r in a.accumulators] == ["acc"]
        assert a.prefetch_arrays == ["A", "X"]

    def test_ger_inner_loop_analyzed(self, p4e):
        spec = get_blas2("dger")
        a = FKO(p4e).analyze(spec.hil)
        assert a.vectorizable
        assert a.output_arrays == ["A"]

    def test_nested_arrays_not_provably_aligned(self, p4e):
        a = FKO(p4e).analyze(get_blas2("dgemv").hil)
        assert a.aligned_arrays == set()

    def test_blas1_arrays_still_provably_aligned(self, p4e):
        from repro.kernels import get_kernel
        a = FKO(p4e).analyze(get_kernel("ddot").hil)
        assert a.aligned_arrays == {"X", "Y"}


class TestCodegen:
    def test_gemv_uses_unaligned_vector_loads(self, p4e):
        spec = get_blas2("dgemv")
        k = FKO(p4e).compile(spec.hil, TransformParams(sv=True))
        ops = {i.op for n in k.fn.loop.body for i in k.fn.block(n).instrs}
        assert Opcode.VLDU in ops
        assert Opcode.VLD not in ops

    def test_blas1_keeps_aligned_loads(self, p4e):
        from repro.kernels import get_kernel
        k = FKO(p4e).compile(get_kernel("ddot").hil,
                             TransformParams(sv=True, peephole=False))
        ops = {i.op for n in k.fn.loop.body for i in k.fn.block(n).instrs}
        assert Opcode.VLD in ops
        assert Opcode.VLDU not in ops

    def test_ger_unaligned_stores(self, p4e):
        spec = get_blas2("dger")
        k = FKO(p4e).compile(spec.hil, TransformParams(sv=True))
        ops = {i.op for n in k.fn.loop.body for i in k.fn.block(n).instrs}
        assert Opcode.VSTU in ops

    def test_runtime_pointer_reset_lowered(self, p4e):
        spec = get_blas2("dgemv")
        k = FKO(p4e).compile(spec.hil, TransformParams(sv=False))
        # X -= N becomes an IMUL (bytes) + SUB somewhere outside the loop
        assert any(i.op is Opcode.IMUL and "advance" in i.comment
                   for i in k.fn.instructions())


@pytest.mark.parametrize("name", sorted(BLAS2_REGISTRY))
@pytest.mark.parametrize("pi", range(len(PARAMS)))
def test_blas2_correctness(name, pi, p4e, rng):
    spec = get_blas2(name)
    k = FKO(p4e).compile(spec.hil, PARAMS[pi], debug_verify=True)
    rtol = 2e-5 if spec.precision == "s" else 1e-11
    for m, n in SHAPES:
        got, want = run_blas2(k.fn, spec, m, n, rng)
        for key in got:
            assert np.allclose(got[key], want[key], rtol=rtol), \
                (name, pi, m, n, key)


def test_blas2_on_opteron(opt, rng):
    spec = get_blas2("sgemv")
    k = FKO(opt).compile(spec.hil, TransformParams(sv=True, unroll=4, ae=2))
    got, want = run_blas2(k.fn, spec, 9, 31, rng)
    assert np.allclose(got["Y"], want["Y"], rtol=2e-5)


def test_inner_loop_tuning_improves_gemv(p4e):
    """An ifko-style search over the inner loop beats the scalar build."""
    from repro.machine import Context, summarize, time_kernel
    spec = get_blas2("dgemv")
    fko = FKO(p4e)
    scalar = fko.compile(spec.hil, TransformParams(sv=False, unroll=1,
                                                   lc=False))
    tuned = fko.compile(spec.hil, TransformParams(
        sv=True, unroll=4, ae=2,
        prefetch={"A": PrefetchParams(PrefetchHint.NTA, 512)}))
    n = 4096  # one long row: inner loop dominates
    t_s = time_kernel(summarize(scalar.fn), p4e, Context.OUT_OF_CACHE, n)
    t_v = time_kernel(summarize(tuned.fn), p4e, Context.OUT_OF_CACHE, n)
    assert t_v.cycles < t_s.cycles
