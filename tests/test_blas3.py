"""The Level-3 workload: registry wiring, differential correctness of
the new kernels, blocked-GEMM timing acceptance, and engine-level
determinism for nest kernels."""

from __future__ import annotations

import pytest

from repro.fko import FKO, TransformParams
from repro.kernels import ALL_KERNEL_ORDER, KERNEL_ORDER, REGISTRY, get_kernel
from repro.kernels.blas3 import BLAS3_ORDER
from repro.machine import Context
from repro.search import TuneConfig, TuningSession
from repro.timing.tester import test_kernel as check_kernel
from repro.timing.timer import Timer

#: out-of-cache matrix order for the acceptance runs (3 * 512^2 * 8
#: bytes = 6MB of operands, far beyond either machine's L2)
N_OOC = 512
EVALS = 40


def _config(**kw):
    kw.setdefault("run_tester", False)
    kw.setdefault("max_evals", EVALS)
    return TuneConfig(**kw)


# ---------------------------------------------------------------------------
# registry

class TestRegistry:
    def test_table1_order_is_untouched(self):
        assert len(KERNEL_ORDER) == 14
        assert not any(k in KERNEL_ORDER for k in BLAS3_ORDER)

    def test_all_kernels_appends_level3(self):
        assert ALL_KERNEL_ORDER == KERNEL_ORDER + BLAS3_ORDER
        for name in BLAS3_ORDER:
            assert name in REGISTRY

    def test_gemm_spec_shape(self):
        spec = get_kernel("dgemm")
        assert spec.matrix_args == ("A", "B", "C")
        assert spec.reduction_outputs == ("C",)
        assert spec.flops_order == 3
        assert spec.nest_timing
        assert spec.flops(10) == 2 * 10 ** 3


# ---------------------------------------------------------------------------
# differential correctness (default pipeline; transformed points are
# covered by test_tiling and the fuzzer)

class TestCorrectness:
    @pytest.mark.parametrize("name", BLAS3_ORDER)
    def test_default_compile_matches_reference(self, p4e, name):
        spec = get_kernel(name)
        fko = FKO(p4e)
        check_kernel(fko.compile(spec.hil, fko.defaults(spec.hil)), spec)

    def test_vectorized_gemm_matches_reference(self, p4e):
        spec = get_kernel("dgemm")
        compiled = FKO(p4e).compile(
            spec.hil, TransformParams(sv=True, unroll=8),
            debug_verify=True)
        check_kernel(compiled, spec)


# ---------------------------------------------------------------------------
# timing: the paper's Level-3 claim — blocking must matter

class TestBlockedTiming:
    def test_blocked_gemm_beats_unblocked_by_2x(self, p4e):
        spec = get_kernel("dgemm")
        fko = FKO(p4e)
        timer = Timer(p4e, Context.OUT_OF_CACHE, N_OOC)
        base = timer.time(
            fko.compile(spec.hil, TransformParams(sv=False)), spec)
        tiled = TransformParams(sv=True, unroll=8) \
            .with_ext("tile:k", 128).with_ext("tile:j", 128)
        best = timer.time(fko.compile(spec.hil, tiled), spec)
        assert base.cycles / best.cycles >= 2.0

    def test_nest_timing_is_deterministic(self, p4e):
        spec = get_kernel("dgemm")
        compiled = FKO(p4e).compile(
            spec.hil, TransformParams().with_ext("tile:k", 64))
        timer = Timer(p4e, Context.OUT_OF_CACHE, N_OOC)
        a = timer.time(compiled, spec)
        b = Timer(p4e, Context.OUT_OF_CACHE, N_OOC).time(compiled, spec)
        assert a.cycles == b.cycles


# ---------------------------------------------------------------------------
# engine: tuning a nest kernel stays deterministic and attributes TILE

@pytest.fixture(scope="module")
def serial_dgemm():
    with TuningSession(_config()) as s:
        return s.tune("dgemm", "p4e", Context.OUT_OF_CACHE, N_OOC)


class TestEngine:
    def test_line_search_attributes_a_tile_phase(self, serial_dgemm):
        gains = serial_dgemm.search.phase_speedups()
        assert "TILE" in gains
        # blocking dominates out-of-cache GEMM: the TILE phase must
        # carry a real gain, and the winner must actually be tiled
        assert gains["TILE"] > 1.2
        assert serial_dgemm.params.tiles()

    def test_legacy_kernels_report_no_tile_phase(self, p4e):
        with TuningSession(_config()) as s:
            ddot = s.tune("ddot", "p4e", Context.OUT_OF_CACHE, 4000)
        assert "TILE" not in ddot.search.phase_gains

    def test_parallel_matches_serial(self, serial_dgemm):
        with TuningSession(_config(jobs=4)) as s:
            par = s.tune("dgemm", "p4e", Context.OUT_OF_CACHE, N_OOC)
        assert par.params.key() == serial_dgemm.params.key()
        assert par.search.best_cycles == serial_dgemm.search.best_cycles
        assert par.search.history == serial_dgemm.search.history
