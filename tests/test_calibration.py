"""Calibration: the paper's qualitative results must hold on the shipped
machine models (DESIGN.md section 4 "shape targets").

These run the real experiment pipeline at reduced out-of-cache N, via
the shared result store, so the whole file costs one sweep.  Any change
to the machine model or the compiler that breaks a paper-level claim
fails here.
"""

import math

import pytest

from repro.experiments.store import METHODS, ResultStore
from repro.experiments.relative import relative_performance
from repro.experiments.fig7 import figure7
from repro.kernels import KERNEL_ORDER
from repro.machine import Context, opteron, pentium4e


@pytest.fixture(scope="module")
def store():
    return ResultStore(quick=True)


@pytest.fixture(scope="module")
def fig2(store):
    return relative_performance(pentium4e(), Context.OUT_OF_CACHE, store)


@pytest.fixture(scope="module")
def fig3(store):
    return relative_performance(opteron(), Context.OUT_OF_CACHE, store)


@pytest.fixture(scope="module")
def fig4(store):
    return relative_performance(pentium4e(), Context.IN_L2, store)


def idx(res, kernel):
    for i, k in enumerate(res.kernels):
        if k.rstrip("*") == kernel:
            return i
    raise KeyError(kernel)


class TestHeadlineClaims:
    """Section 3.3: 'On all studied architectures and contexts, ifko
    provides the best performance on average, better even than the
    hand-tuned kernels found by ATLAS's own empirical search.'"""

    def test_ifko_best_avg_p4e_ooc(self, fig2):
        assert fig2.best_method_on_average() == "ifko", fig2.avg

    def test_ifko_best_avg_p4e_inl2(self, fig4):
        assert fig4.best_method_on_average() == "ifko", fig4.avg

    def test_ifko_best_vavg_everywhere(self, fig2, fig3, fig4):
        # VAVG (vectorizable routines): ifko on top in all three configs
        for res in (fig2, fig3, fig4):
            best = max(res.vavg, key=res.vavg.get)
            assert best == "ifko", (res.machine, res.context, res.vavg)

    def test_opteron_avg_ifko_vs_atlas_within_iamax(self, fig3):
        """Known deviation (EXPERIMENTS.md): on the simulated Opteron the
        bandwidth ceiling compresses out-of-cache differences, so ATLAS's
        hand-vectorized isamax is the only thing separating the AVG
        columns.  ifko must still be within 4 points of ATLAS and ahead
        of every compiler baseline."""
        assert fig3.avg["ifko"] >= fig3.avg["ATLAS"] - 4.0
        for m in ("gcc+ref", "icc+ref", "icc+prof", "FKO"):
            assert fig3.avg["ifko"] > fig3.avg[m] + 5.0

    def test_ifko_beats_plain_fko_everywhere(self, fig2, fig3, fig4):
        for res in (fig2, fig3, fig4):
            assert res.avg["ifko"] > res.avg["FKO"] + 5.0

    def test_ifko_beats_all_compilers(self, fig2, fig3, fig4):
        for res in (fig2, fig3, fig4):
            for m in ("gcc+ref", "icc+ref", "icc+prof"):
                assert res.avg["ifko"] > res.avg[m], (res.machine, m)


class TestHandTunedWins:
    """Section 3.3's enumerated ifko losses."""

    def test_atlas_wins_isamax_everywhere(self, fig2, fig3, fig4):
        for res in (fig2, fig3, fig4):
            i = idx(res, "isamax")
            assert res.percent["ATLAS"][i] > res.percent["ifko"][i], \
                (res.machine, res.context)

    def test_iamax_loss_is_decisive(self, fig2):
        # "in several individual hand-tuned cases, ifko loses decidedly"
        i = idx(fig2, "isamax")
        assert fig2.percent["ifko"][i] < 85.0

    def test_atlas_wins_dcopy_on_p4e_block_fetch(self, fig2, store):
        i = idx(fig2, "dcopy")
        assert fig2.percent["ATLAS"][i] > fig2.percent["ifko"][i]
        # and the winner really is the hand kernel (starred)
        res = store.get(pentium4e(), Context.OUT_OF_CACHE, "dcopy", "ATLAS")
        assert res.starred

    def test_opteron_scopy_near_tie(self, fig3):
        # "just barely above clock resolution" — a near-tie, not a rout
        i = idx(fig3, "scopy")
        assert abs(fig3.percent["ATLAS"][i] - fig3.percent["ifko"][i]) < 3.0


class TestCompilerBehaviours:
    def test_iccprof_wnt_disaster_on_opteron(self, fig3):
        """'for both swap and axpy, icc+prof is many times slower than
        icc+ref in Figure 3'"""
        for kernel in ("sswap", "dswap", "saxpy", "daxpy"):
            i = idx(fig3, kernel)
            assert fig3.percent["icc+prof"][i] < \
                fig3.percent["icc+ref"][i] * 0.75, kernel

    def test_iccprof_wnt_fine_on_p4e(self, fig2):
        """'non-temporal writes can improve performance anytime the
        operand doesn't need to be retained in the cache on the P4E'"""
        for kernel in ("sswap", "daxpy"):
            i = idx(fig2, kernel)
            assert fig2.percent["icc+prof"][i] >= \
                fig2.percent["icc+ref"][i] * 0.98, kernel

    def test_iccprof_helps_opteron_copy(self, fig3):
        # WNT on a write-only stream is the good case on Opteron
        i = idx(fig3, "dcopy")
        assert fig3.percent["icc+prof"][i] > fig3.percent["icc+ref"][i] * 1.2

    def test_gcc_trails_icc_on_p4e(self, fig2):
        assert fig2.avg["gcc+ref"] < fig2.avg["icc+ref"]


class TestParameterShapes:
    def test_sv_on_for_vectorizable_kernels(self, store):
        # Table 3: SV=Y everywhere except iamax
        for mk in (pentium4e, opteron):
            for k in ("ddot", "sasum", "dcopy", "sswap"):
                res = store.get(mk(), Context.OUT_OF_CACHE, k, "ifko")
                assert res.search.best_params.sv, (mk().name, k)

    def test_wnt_choices_match_table3(self, store):
        p4 = store.get(pentium4e(), Context.OUT_OF_CACHE, "dcopy", "ifko")
        assert p4.search.best_params.wnt
        op_copy = store.get(opteron(), Context.OUT_OF_CACHE, "dcopy", "ifko")
        assert op_copy.search.best_params.wnt        # write-only stream
        op_swap = store.get(opteron(), Context.OUT_OF_CACHE, "dswap", "ifko")
        assert not op_swap.search.best_params.wnt    # read+write stream

    def test_wnt_off_in_cache(self, store):
        for k in ("dcopy", "dswap", "dscal"):
            res = store.get(pentium4e(), Context.IN_L2, k, "ifko")
            assert not res.search.best_params.wnt, k

    def test_prefetch_distances_in_paper_range(self, store):
        # Table 3 distances run 56..2048 bytes
        for mk in (pentium4e, opteron):
            for k in ("dasum", "ddot"):
                res = store.get(mk(), Context.OUT_OF_CACHE, k, "ifko")
                for arr, pf in res.search.best_params.prefetch.items():
                    if pf.enabled:
                        assert 56 <= pf.dist <= 2048, (mk().name, k, arr)


class TestFigure7Shapes:
    def test_pf_dst_is_dominant_gain(self, store):
        """'The prefetch results are of particular interest ... and
        provide the greatest speedup on average.'"""
        f7 = figure7(store, kernels=["ddot", "dasum", "dcopy", "dswap",
                                     "daxpy", "sscal"])
        avg = f7.average_gains()
        others = [avg[p] for p in ("WNT", "PF INS", "UR", "AE")]
        assert avg["PF DST"] > max(others)

    def test_total_average_speedup_near_paper(self, store):
        """Paper: 1.38x on average over ops/archs/contexts."""
        f7 = figure7(store)
        avg = f7.average_gains()
        assert 1.1 < avg["total"] < 2.2

    def test_ae_matters_in_cache_for_reductions(self, store):
        """'accumulator expansion (AE), which on the P4E accounts for an
        impressive 41% of sasum speedup in-cache'"""
        res = store.get(pentium4e(), Context.IN_L2, "sasum", "ifko")
        gains = res.search.phase_speedups()
        assert gains["AE"] > 1.15
        oc = store.get(pentium4e(), Context.OUT_OF_CACHE, "sasum", "ifko")
        assert gains["AE"] > oc.search.phase_speedups()["AE"]


class TestFigure5Shapes:
    def test_asum_is_fastest_routine(self, store):
        """'ASUM, which has only one input vector, and no output vectors,
        is always the fastest routine'"""
        for mk in (pentium4e, opteron):
            vals = {k: store.get(mk(), Context.OUT_OF_CACHE, k, "ifko").mflops
                    for k in KERNEL_ORDER}
            fastest = max(vals, key=vals.get)
            assert fastest in ("sasum", "isamax"), (mk().name, fastest)
            assert vals["sasum"] >= max(
                v for k, v in vals.items()
                if k not in ("sasum", "isamax")), mk().name

    def test_single_precision_not_slower(self, store):
        """'single precision (half the data load for same amount of
        FLOPs) always faster than double'"""
        for base in ("swap", "copy", "dot", "asum", "axpy", "scal"):
            s = store.get(pentium4e(), Context.OUT_OF_CACHE,
                          "s" + base, "ifko").mflops
            d = store.get(pentium4e(), Context.OUT_OF_CACHE,
                          "d" + base, "ifko").mflops
            assert s >= d * 0.99, base

    def test_bus_bound_ops_slowest(self, store):
        vals = {k: store.get(pentium4e(), Context.OUT_OF_CACHE,
                             k, "ifko").mflops for k in KERNEL_ORDER}
        assert vals["dswap"] < vals["ddot"] < vals["dasum"]
