"""Tests for the command-line driver (python -m repro)."""

import pathlib

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr()
    return rc, out.out, out.err


class TestKernelsAndAnalyze:
    def test_kernels_lists_all_14(self, capsys):
        rc, out, _ = run(capsys, "kernels")
        assert rc == 0
        assert out.count("\n") >= 14
        assert "idamax" in out and "sswap" in out

    def test_analyze_builtin(self, capsys):
        rc, out, _ = run(capsys, "analyze", "ddot", "-m", "p4e")
        assert rc == 0
        assert "vectorizable: yes" in out
        assert "dot" in out

    def test_analyze_iamax_reports_reasons(self, capsys):
        rc, out, _ = run(capsys, "analyze", "idamax")
        assert "vectorizable: no" in out
        assert "control flow" in out

    def test_analyze_hil_file(self, capsys, tmp_path, ddot_src):
        f = tmp_path / "mine.hil"
        f.write_text(ddot_src)
        rc, out, _ = run(capsys, "analyze", str(f))
        assert rc == 0 and "vectorizable: yes" in out

    def test_unknown_kernel_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "zgemm"])


class TestCompile:
    def test_compile_ir_output(self, capsys):
        rc, out, err = run(capsys, "compile", "ddot", "-u", "2")
        assert rc == 0
        assert "# function ddot" in out
        assert "applied" in err

    def test_compile_asm_output(self, capsys):
        rc, out, _ = run(capsys, "compile", "sdot", "--asm")
        assert ".globl sdot" in out
        assert "addps" in out or "addss" in out

    def test_compile_with_prefetch_flag(self, capsys):
        rc, out, _ = run(capsys, "compile", "dasum", "--asm",
                         "-p", "X=t0:768")
        assert "prefetcht0 768(" in out

    def test_compile_test_flag_verifies(self, capsys):
        rc, _, err = run(capsys, "compile", "daxpy", "-u", "4", "--test")
        assert rc == 0 and "tester: daxpy OK" in err

    def test_bad_prefetch_spec(self):
        with pytest.raises(SystemExit):
            main(["compile", "ddot", "-p", "X-nonsense"])

    def test_no_sv_flag(self, capsys):
        rc, _, err = run(capsys, "compile", "ddot", "--no-sv")
        assert "'sv'" not in err.replace("sv': True", "")


class TestTune:
    def test_tune_small(self, capsys):
        rc, out, _ = run(capsys, "tune", "sscal", "-m", "opteron",
                         "--n", "8000", "--max-evals", "60")
        assert rc == 0
        assert "best parameters" in out
        assert "model-MFLOPS" in out

    def test_tune_in_cache_context(self, capsys):
        rc, out, _ = run(capsys, "tune", "ddot", "-c", "ic", "--n", "1024",
                         "--max-evals", "60")
        assert rc == 0 and "in-L2" in out

    def test_tune_rejects_loopless_source(self, tmp_path):
        f = tmp_path / "noloop.hil"
        f.write_text("ROUTINE f(X: ptr double);\nX += 1;\n")
        with pytest.raises(SystemExit, match="no @TUNE"):
            main(["tune", str(f), "--n", "100"])

    def test_tune_block_fetch_flag(self, capsys):
        rc, out, _ = run(capsys, "tune", "dcopy", "--n", "8000",
                         "--enable-block-fetch", "--max-evals", "80")
        assert rc == 0 and "BF=Y" in out


class TestTuneAllAndTrace:
    def test_tune_all_filtered_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        rc, out, _ = run(capsys, "tune-all", "--kernels", "ddot,dasum",
                         "--n", "4000", "--max-evals", "30",
                         "--trace-out", str(trace))
        assert rc == 0
        assert "2/2 jobs" in out
        assert "ddot:p4e:out-of-cache:4000" in out
        assert "dasum:p4e:out-of-cache:4000" in out
        assert trace.exists()

        rc, out, _ = run(capsys, "trace", str(trace))
        assert rc == 0
        assert "# trace:" in out and "evaluations by phase" in out
        assert "ddot:p4e:out-of-cache:4000" in out

    def test_tune_all_cache_and_resume(self, capsys, tmp_path):
        state = tmp_path / "batch.json"
        cache = tmp_path / "evals"
        args = ("tune-all", "--kernels", "ddot", "--n", "4000",
                "--max-evals", "30", "--cache-dir", str(cache),
                "--resume", str(state))
        rc, out, _ = run(capsys, *args)
        assert rc == 0 and "0 resumed" in out
        rc, out, _ = run(capsys, *args)
        assert rc == 0
        assert "1 resumed" in out
        assert "1/1 jobs" in out

    def test_tune_all_rejects_unknown_kernel(self, capsys):
        with pytest.raises(SystemExit):
            main(["tune-all", "--kernels", "zgemm"])

    def test_tune_warm_cache_reports_hits(self, capsys, tmp_path):
        args = ("tune", "ddot", "--n", "4000", "--max-evals", "30",
                "--cache-dir", str(tmp_path / "evals"))
        rc, _, _ = run(capsys, *args)
        assert rc == 0
        rc, out, _ = run(capsys, *args)
        assert rc == 0
        assert "# evaluation cache:" in out

    def test_trace_missing_file_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "/nonexistent/trace.jsonl"])


class TestParser:
    def test_context_parsing(self):
        p = build_parser()
        args = p.parse_args(["tune", "ddot", "-c", "oc"])
        from repro.machine import Context
        assert args.context is Context.OUT_OF_CACHE
        args = p.parse_args(["tune", "ddot", "-c", "ic"])
        assert args.context is Context.IN_L2

    def test_bad_context_rejected(self):
        p = build_parser()
        with pytest.raises(SystemExit):
            p.parse_args(["tune", "ddot", "-c", "l3"])
