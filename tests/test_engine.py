"""Tests for the batch tuning engine (repro.search.engine).

Covers the engine's contract surface:

* parallel == serial, bit-identical, at both fan-out grains;
* the persistent evaluation cache (warm rerun = zero evaluations);
* checkpoint/resume of a batch;
* JSON round-trips of params / search results / tuned kernels;
* robustness: retry-once on SimulationFault, per-eval timeouts;
* the deprecation shim over the old tune_kernel keyword signature;
* the JSONL trace and its summary.
"""

import json
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SimulationFault
from repro.fko import FKO, TransformParams
from repro.kernels import KERNEL_ORDER, get_kernel
from repro.machine import Context
from repro.search import (EvalCache, SearchResult, TuneConfig, TunedKernel,
                          TuningJob, TuningSession, compile_default,
                          eval_key, evaluate_params, read_trace,
                          registry_jobs, render_trace_summary,
                          summarize_trace, tune_kernel)
from repro.timing.timer import Timer

N = 4000
EVALS = 40


def _config(**kw):
    kw.setdefault("run_tester", False)
    kw.setdefault("max_evals", EVALS)
    return TuneConfig(**kw)


@pytest.fixture(scope="module")
def serial_ddot():
    with TuningSession(_config()) as s:
        return s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)


# ---------------------------------------------------------------------------
# determinism: jobs=N must be bit-identical to jobs=1

class TestParallelEqualsSerial:
    def test_candidate_fanout_matches_serial(self, serial_ddot):
        with TuningSession(_config(jobs=4)) as s:
            par = s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        assert par.params.key() == serial_ddot.params.key()
        assert par.search.best_cycles == serial_ddot.search.best_cycles
        assert par.search.history == serial_ddot.search.history

    def test_job_fanout_matches_serial(self):
        jobs = [TuningJob(k, "p4e", Context.OUT_OF_CACHE, N, max_evals=EVALS)
                for k in ("ddot", "dasum")]
        with TuningSession(_config(jobs=1)) as s:
            serial = s.run(jobs)
        with TuningSession(_config(jobs=4)) as s:
            par = s.run(jobs)
        assert not serial.errors and not par.errors
        assert len(par) == len(serial) == 2
        for job in jobs:
            a, b = serial[job.key()], par[job.key()]
            assert a.params.key() == b.params.key()
            assert a.search.best_cycles == b.search.best_cycles
            assert a.timing.cycles == b.timing.cycles


# ---------------------------------------------------------------------------
# persistent evaluation cache

class TestEvalCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = EvalCache(str(tmp_path))
        cache.put("ab" * 32, 123.5, meta={"kernel": "ddot"})
        assert cache.get("ab" * 32) == 123.5
        assert len(cache) == 1
        assert cache.hits == 1 and cache.stores == 1

    def test_absent_is_miss(self, tmp_path):
        cache = EvalCache(str(tmp_path))
        assert cache.get("cd" * 32) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = EvalCache(str(tmp_path))
        cache.put("ef" * 32, 7.0)
        for f in tmp_path.rglob("*.json"):
            f.write_text("{not json")
        assert EvalCache(str(tmp_path)).get("ef" * 32) is None

    @pytest.mark.parametrize("bad", ["NaN", "Infinity", "-Infinity"])
    def test_nonfinite_entry_is_miss(self, tmp_path, bad):
        # a NaN/inf cycle count from disk used to be served as a hit,
        # poisoning every search that touched the entry
        cache = EvalCache(str(tmp_path))
        cache.put("ab" * 32, 7.0)
        for f in tmp_path.rglob("*.json"):
            f.write_text('{"cycles": %s}' % bad)
        fresh = EvalCache(str(tmp_path))
        assert fresh.get("ab" * 32) is None
        assert fresh.misses == 1 and fresh.hits == 0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_nonfinite_put_refused(self, tmp_path, bad):
        cache = EvalCache(str(tmp_path))
        cache.put("cd" * 32, bad)
        assert cache.stores == 0 and len(cache) == 0
        assert cache.get("cd" * 32) is None

    def test_eval_key_sensitivity(self):
        base = eval_key("hil", "p4e", Context.OUT_OF_CACHE, N, "k", "1.1.0")
        assert base == eval_key("hil", "p4e", Context.OUT_OF_CACHE, N,
                                "k", "1.1.0")
        assert base != eval_key("hil2", "p4e", Context.OUT_OF_CACHE, N,
                                "k", "1.1.0")
        assert base != eval_key("hil", "opteron", Context.OUT_OF_CACHE, N,
                                "k", "1.1.0")
        assert base != eval_key("hil", "p4e", Context.IN_L2, N, "k", "1.1.0")
        assert base != eval_key("hil", "p4e", Context.OUT_OF_CACHE, N + 1,
                                "k", "1.1.0")
        assert base != eval_key("hil", "p4e", Context.OUT_OF_CACHE, N,
                                "k2", "1.1.0")
        assert base != eval_key("hil", "p4e", Context.OUT_OF_CACHE, N,
                                "k", "9.9.9")

    def test_warm_rerun_is_all_cache_hits(self, tmp_path, serial_ddot):
        cache_dir = str(tmp_path / "evals")
        with TuningSession(_config(cache_dir=cache_dir)) as s:
            cold = s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
            n_cold = s.stats.evaluations
        assert n_cold > 0
        with TuningSession(_config(cache_dir=cache_dir)) as s:
            warm = s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
            assert s.stats.evaluations == 0
            assert s.stats.cache_hits == n_cold
        # cached cycles are real measurements: same best as uncached runs
        assert warm.params.key() == cold.params.key()
        assert warm.params.key() == serial_ddot.params.key()
        assert warm.search.best_cycles == serial_ddot.search.best_cycles


# ---------------------------------------------------------------------------
# checkpoint / resume

class TestCheckpointResume:
    def test_resume_skips_completed_jobs(self, tmp_path):
        state = str(tmp_path / "batch.json")
        j1 = TuningJob("ddot", "p4e", Context.OUT_OF_CACHE, N,
                       max_evals=EVALS)
        j2 = TuningJob("dasum", "p4e", Context.OUT_OF_CACHE, N,
                       max_evals=EVALS)
        with TuningSession(_config(resume=state)) as s:
            first = s.run([j1])
        assert not first.resumed and j1.key() in first.results
        saved = json.loads((tmp_path / "batch.json").read_text())
        assert j1.key() in saved["completed"]

        with TuningSession(_config(resume=state)) as s:
            second = s.run([j1, j2])
            assert s.stats.jobs_resumed == 1
        assert second.resumed == [j1.key()]
        assert len(second) == 2
        assert (second[j1.key()].params.key()
                == first[j1.key()].params.key())

    def test_stale_version_checkpoint_is_ignored(self, tmp_path):
        state = tmp_path / "batch.json"
        job = TuningJob("ddot", "p4e", Context.OUT_OF_CACHE, N,
                        max_evals=EVALS)
        state.write_text(json.dumps(
            {"version": "0.0.0", "completed": {job.key(): {"bogus": 1}}}))
        with TuningSession(_config(resume=str(state))) as s:
            batch = s.run([job])
        assert not batch.resumed
        assert job.key() in batch.results

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        state = tmp_path / "batch.json"
        state.write_text("{truncated")
        job = TuningJob("ddot", "p4e", Context.OUT_OF_CACHE, N,
                        max_evals=EVALS)
        with TuningSession(_config(resume=str(state))) as s:
            batch = s.run([job])
        assert job.key() in batch.results


# ---------------------------------------------------------------------------
# robustness: fault and timeout handling around one evaluation

class _FlakyFKO:
    """Delegates to a real FKO after raising N SimulationFaults."""

    def __init__(self, machine, failures):
        self.real = FKO(machine)
        self.failures = failures

    def compile(self, hil, params=None, debug_verify=False):
        if self.failures > 0:
            self.failures -= 1
            raise SimulationFault("injected")
        return self.real.compile(hil, params, debug_verify=debug_verify)


class _SlowFKO:
    def __init__(self, machine, delay):
        self.real = FKO(machine)
        self.delay = delay

    def compile(self, hil, params=None, debug_verify=False):
        time.sleep(self.delay)
        return self.real.compile(hil, params, debug_verify=debug_verify)


class TestRobustness:
    def test_fault_is_terminal_not_retried(self, p4e, ddot_spec):
        """The simulator is deterministic: one fault means every retry
        would fault identically, so the status is ``fault`` immediately
        and the candidate is compiled exactly once."""
        fko = _FlakyFKO(p4e, failures=1)
        timer = Timer(p4e, Context.OUT_OF_CACHE, N)
        cycles, status, _ = evaluate_params(
            fko, timer, ddot_spec.hil, TransformParams(),
            ddot_spec.flops(N), "ddot|")
        assert cycles == float("inf")
        assert status.startswith("fault:")
        assert fko.failures == 0   # a retry would have consumed the real FKO

    def test_ok_eval_reports_fast_path(self, p4e, ddot_spec):
        fko = FKO(p4e)
        timer = Timer(p4e, Context.OUT_OF_CACHE, 80000)
        cycles, status, meta = evaluate_params(
            fko, timer, ddot_spec.hil, TransformParams(sv=True, unroll=8),
            ddot_spec.flops(80000), "ddot|")
        assert status == "ok" and cycles != float("inf")
        assert meta["fast"] is True

    def test_timeout_returns_inf(self, p4e, ddot_spec):
        fko = _SlowFKO(p4e, delay=0.5)
        timer = Timer(p4e, Context.OUT_OF_CACHE, N)
        cycles, status, _ = evaluate_params(
            fko, timer, ddot_spec.hil, TransformParams(),
            ddot_spec.flops(N), "ddot|", timeout=0.05)
        assert cycles == float("inf")
        assert status == "timeout"


# ---------------------------------------------------------------------------
# JSON round-trips

_params_st = st.builds(
    TransformParams,
    sv=st.booleans(),
    unroll=st.sampled_from([1, 2, 4, 8, 16]),
    lc=st.booleans(),
    ae=st.sampled_from([1, 2, 4]),
    wnt=st.booleans(),
)


class TestRoundTrips:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(p=_params_st)
    def test_params_roundtrip_preserves_key(self, p):
        again = TransformParams.from_dict(json.loads(
            json.dumps(p.to_dict())))
        assert again.key() == p.key()

    def test_params_roundtrip_keeps_prefetch(self):
        from repro.ir import PrefetchHint
        p = TransformParams(sv=True, unroll=8).with_pf(
            "X", PrefetchHint.NTA, 512)
        again = TransformParams.from_dict(p.to_dict())
        assert again.key() == p.key()
        assert again.describe() == p.describe()

    def test_search_result_roundtrip(self, serial_ddot):
        sr = serial_ddot.search
        again = SearchResult.from_dict(json.loads(json.dumps(sr.to_dict())))
        assert again.best_params.key() == sr.best_params.key()
        assert again.best_cycles == sr.best_cycles
        assert again.n_evaluations == sr.n_evaluations
        assert again.history == sr.history
        assert again.phase_gains == sr.phase_gains
        assert again.start_cycles == sr.start_cycles

    def test_tuned_kernel_roundtrip(self, serial_ddot):
        again = TunedKernel.from_dict(json.loads(
            json.dumps(serial_ddot.to_dict())))
        assert again.params.key() == serial_ddot.params.key()
        assert again.mflops == serial_ddot.mflops
        assert again.timing.cycles == serial_ddot.timing.cycles
        assert again.context is serial_ddot.context
        assert again.n == serial_ddot.n
        assert again.compiled.fn is not None   # recompiled, not serialized
        assert (again.search.best_cycles
                == serial_ddot.search.best_cycles)

    def test_compile_default_roundtrip_keeps_search_none(self, p4e,
                                                         ddot_spec):
        tk = compile_default(ddot_spec, p4e, Context.OUT_OF_CACHE, N)
        assert tk.search is None and tk.mflops > 0
        again = TunedKernel.from_dict(tk.to_dict())
        assert again.search is None
        assert again.timing.cycles == tk.timing.cycles


# ---------------------------------------------------------------------------
# config=TuneConfig(...) is the only spelling (the pre-engine keyword
# shim finished its deprecation window and was removed)

class TestConfigOnlySignature:
    def test_legacy_kwargs_are_gone(self, p4e, ddot_spec):
        with pytest.raises(TypeError):
            tune_kernel(ddot_spec, p4e, Context.OUT_OF_CACHE, N,
                        max_evals=EVALS, run_tester=False)

    def test_unknown_kwarg_raises(self, p4e, ddot_spec):
        with pytest.raises(TypeError):
            tune_kernel(ddot_spec, p4e, Context.OUT_OF_CACHE, N, bogus=1)

    def test_config_object_is_the_front_door(self, p4e, ddot_spec,
                                             serial_ddot):
        tk = tune_kernel(ddot_spec, p4e, Context.OUT_OF_CACHE, N,
                         config=_config())
        assert tk.params.key() == serial_ddot.params.key()


# ---------------------------------------------------------------------------
# jobs and batch plumbing

class TestTuningJob:
    def test_normalizes_objects_to_names(self, p4e, ddot_spec):
        job = TuningJob(ddot_spec, p4e, Context.OUT_OF_CACHE, N)
        assert job.kernel == "ddot" and job.machine == "p4e"
        assert job.key() == f"ddot:p4e:out-of-cache:{N}"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            TuningJob("zgemm", "p4e", Context.OUT_OF_CACHE, N)

    def test_dict_roundtrip(self):
        job = TuningJob("ddot", "opteron", Context.IN_L2, 1024,
                        max_evals=99)
        again = TuningJob.from_dict(job.to_dict())
        assert again == job

    def test_registry_jobs_cover_registry(self):
        jobs = registry_jobs()
        assert [j.kernel for j in jobs] == list(KERNEL_ORDER)
        both = registry_jobs(kernels=["ddot"],
                             machines=["p4e", "opteron"],
                             contexts=[Context.OUT_OF_CACHE, Context.IN_L2])
        assert len(both) == 4
        assert len({j.key() for j in both}) == 4


# ---------------------------------------------------------------------------
# tracing

class TestTrace:
    def test_trace_records_search_and_summarizes(self, tmp_path):
        out = tmp_path / "run.jsonl"
        with TuningSession(_config(trace=str(out))) as s:
            tk = s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
            n_evals = s.stats.evaluations
        events = read_trace(str(out))
        kinds = {e["event"] for e in events}
        assert {"job-start", "eval", "job-end"} <= kinds
        summary = summarize_trace(events)
        assert summary["evaluations"] == n_evals
        assert summary["cache_hits"] == 0
        job = next(iter(summary["jobs"].values()))
        assert job["evaluations"] == n_evals
        assert job["best_cycles"] == tk.search.best_cycles
        text = render_trace_summary(summary)
        assert "# trace:" in text and "evaluations by phase" in text

    def test_read_trace_skips_malformed_lines(self, tmp_path):
        f = tmp_path / "t.jsonl"
        f.write_text('{"event": "eval", "wall": 0.1}\n'
                     "NOT JSON\n"
                     '{"event": "cache-hit"}\n')
        events = read_trace(str(f))
        assert len(events) == 2
        summary = summarize_trace(events)
        assert summary["evaluations"] == 1
        assert summary["cache_hits"] == 1

    def test_nonfinite_cycles_serialize_as_null(self, tmp_path):
        from repro.search import TraceWriter
        out = tmp_path / "t.jsonl"
        w = TraceWriter(str(out))
        w.emit("eval", cycles=float("inf"), wall=0.0, status="timeout")
        w.close()
        ev = read_trace(str(out))[0]
        assert ev["cycles"] is None
