"""Tests for the beyond-the-paper extensions: the block-fetch transform
(the paper's "planned" FKO addition) and the AT&T assembly emitter."""

import pytest

from repro.errors import IRError
from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import Opcode, PrefetchHint, emit_att
from repro.ir.att import emit_instruction
from repro.kernels import get_kernel
from repro.machine import Context, pentium4e, opteron, summarize, time_kernel
from repro.search import LineSearch, build_space
from repro.timing.tester import test_function as check_function
from repro.timing.timer import Timer


class TestBlockFetch:
    def test_applied_and_recorded(self, p4e):
        spec = get_kernel("dcopy")
        k = FKO(p4e).compile(spec.hil, TransformParams(sv=True,
                                                       block_fetch=True))
        assert k.applied.get("block_fetch")
        assert k.fn.loop.block_fetch
        assert summarize(k.fn).write_batch_override == 16

    def test_semantics_unchanged(self, p4e):
        spec = get_kernel("dcopy")
        k = FKO(p4e).compile(spec.hil, TransformParams(
            sv=True, unroll=4, wnt=True, block_fetch=True))
        check_function(k.fn, spec)

    def test_helps_streaming_copy_on_p4e(self, p4e):
        spec = get_kernel("dcopy")
        fko = FKO(p4e)
        base = TransformParams(sv=True, unroll=8, wnt=True,
                               prefetch={"X": PrefetchParams(
                                   PrefetchHint.NTA, 512)})
        plain = fko.compile(spec.hil, base)
        bf = fko.compile(spec.hil, base.copy(block_fetch=True))
        t_p = time_kernel(summarize(plain.fn), p4e, Context.OUT_OF_CACHE,
                          20000)
        t_b = time_kernel(summarize(bf.fn), p4e, Context.OUT_OF_CACHE, 20000)
        assert t_b.cycles < t_p.cycles * 0.95

    def test_negligible_on_opteron(self, opt):
        # on-die memory controller: tiny turnarounds, nothing to batch
        spec = get_kernel("dcopy")
        fko = FKO(opt)
        base = TransformParams(sv=True, unroll=4, wnt=True,
                               prefetch={"X": PrefetchParams(
                                   PrefetchHint.NTA, 512)})
        t_p = time_kernel(summarize(fko.compile(spec.hil, base).fn),
                          opt, Context.OUT_OF_CACHE, 20000)
        t_b = time_kernel(
            summarize(fko.compile(spec.hil,
                                  base.copy(block_fetch=True)).fn),
            opt, Context.OUT_OF_CACHE, 20000)
        assert abs(t_b.cycles - t_p.cycles) / t_p.cycles < 0.05

    def test_search_finds_it_when_enabled(self, p4e):
        """With BF searchable, ifko closes the paper's dcopy* gap."""
        spec = get_kernel("dcopy")
        fko = FKO(p4e)
        a = fko.analyze(spec.hil)
        timer = Timer(p4e, Context.OUT_OF_CACHE, 20000)

        def ev(params):
            return timer.time(fko.compile(spec.hil, params), spec).cycles

        space = build_space(a, p4e, enable_block_fetch=True)
        res = LineSearch(space, fko.defaults(spec.hil),
                         output_arrays=a.output_arrays).run(ev)
        assert res.best_params.block_fetch
        assert res.phase_speedups()["BF"] > 1.05

    def test_off_by_default_in_space(self, p4e):
        spec = get_kernel("dcopy")
        a = FKO(p4e).analyze(spec.hil)
        assert build_space(a, p4e).block_fetch_options == [False]

    def test_params_key_includes_bf(self):
        a = TransformParams(block_fetch=False)
        b = TransformParams(block_fetch=True)
        assert a.key() != b.key()
        assert "BF=Y" in b.describe()


class TestAttEmitter:
    def test_emits_for_all_kernels(self, p4e):
        from repro.kernels import all_kernels
        fko = FKO(p4e)
        for spec in all_kernels():
            text = emit_att(fko.compile(spec.hil).fn)
            assert f".globl {spec.name}" in text
            # iamax's rare blocks lay out after the return, so just
            # require that a ret exists somewhere
            assert "\tret" in text

    def test_scalar_vs_packed_mnemonics(self, p4e):
        fko = FKO(p4e)
        s32 = emit_att(fko.compile(get_kernel("sdot").hil,
                                   TransformParams(sv=True)).fn)
        d64 = emit_att(fko.compile(get_kernel("ddot").hil,
                                   TransformParams(sv=True)).fn)
        assert "mulps" in s32 and "addps" in s32      # packed single
        assert "mulpd" in d64 and "addpd" in d64      # packed double
        assert "mulss" in s32 and "mulsd" in d64      # scalar remainders

    def test_prefetch_and_nt_stores(self, p4e):
        spec = get_kernel("dcopy")
        k = FKO(p4e).compile(spec.hil, TransformParams(
            sv=True, wnt=True,
            prefetch={"X": PrefetchParams(PrefetchHint.T0, 512)}))
        text = emit_att(k.fn)
        assert "prefetcht0 512(" in text
        assert "movntpd" in text

    def test_unaligned_ops_become_movups(self, p4e):
        from repro.kernels.blas2 import get_blas2
        k = FKO(p4e).compile(get_blas2("dgemv").hil,
                             TransformParams(sv=True))
        assert "movups" in emit_att(k.fn)

    def test_param_args_symbolic(self, p4e):
        k = FKO(p4e).compile(get_kernel("ddot").hil)
        text = emit_att(k.fn)
        assert "ARG_N" in text and "ARG_X" in text

    def test_unallocated_function_rejected(self, p4e):
        k = FKO(p4e).compile(get_kernel("ddot").hil, TransformParams(
            sv=True, register_allocation="off"))
        with pytest.raises(IRError, match="virtual register"):
            emit_att(k.fn)

    def test_comment_ir_mode(self, p4e):
        k = FKO(p4e).compile(get_kernel("sasum").hil)
        text = emit_att(k.fn, comment_ir=True)
        assert "# vadd" in text or "# vld" in text

    def test_memory_operand_syntax(self, p4e):
        k = FKO(p4e).compile(get_kernel("ddot").hil,
                             TransformParams(sv=True, unroll=2))
        text = emit_att(k.fn)
        assert "16(%e" in text  # displacement(base)

    def test_vhadd_expansion_avoids_operand_collision(self, p4e):
        # every VHADD expansion uses a scratch distinct from its operands
        k = FKO(p4e).compile(get_kernel("ddot").hil,
                             TransformParams(sv=True, unroll=4, ae=2))
        for instr in k.fn.instructions():
            if instr.op is Opcode.VHADD:
                lines = emit_instruction(instr)
                first = lines[0]
                _, operands = first.split(" ", 1)
                src, dst = [o.strip() for o in operands.split(",")]
                assert src != dst
