"""Tests for FKO's analysis phase (section 2.2.2)."""

import pytest

from repro.fko import FKO
from repro.kernels import get_kernel


class TestVectorizability:
    def test_ddot_vectorizable(self, fko_p4e, ddot_src):
        a = fko_p4e.analyze(ddot_src)
        assert a.vectorizable
        assert a.veclen == 2

    def test_sdot_veclen_4(self, fko_p4e):
        a = fko_p4e.analyze(get_kernel("sdot").hil)
        assert a.vectorizable and a.veclen == 4

    def test_iamax_not_vectorizable_with_reasons(self, fko_p4e, iamax_src):
        a = fko_p4e.analyze(iamax_src)
        assert not a.vectorizable
        text = " ".join(a.not_vectorizable_reasons)
        assert "control flow" in text
        assert "counter" in text

    def test_all_blas_except_iamax_vectorizable(self, fko_p4e):
        from repro.kernels import all_kernels
        for spec in all_kernels():
            a = fko_p4e.analyze(spec.hil)
            if spec.base == "amax":
                assert not a.vectorizable, spec.name
            else:
                assert a.vectorizable, (spec.name,
                                        a.not_vectorizable_reasons)


class TestAccumulators:
    def test_dot_accumulator_found(self, fko_p4e, ddot_src):
        a = fko_p4e.analyze(ddot_src)
        assert [r.name for r in a.accumulators] == ["dot"]

    def test_asum_accumulator_found(self, fko_p4e):
        a = fko_p4e.analyze(get_kernel("dasum").hil)
        assert [r.name for r in a.accumulators] == ["sum"]

    def test_copy_has_no_accumulators(self, fko_p4e):
        a = fko_p4e.analyze(get_kernel("dcopy").hil)
        assert a.accumulators == []

    def test_non_add_carried_scalar_is_not_accumulator(self, fko_p4e):
        src = """ROUTINE prod(N: int, X: ptr double) RETURNS double;
double p = 1.0;
double x;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    p *= x;
    X += 1;
LOOP_END
RETURN p;
"""
        a = fko_p4e.analyze(src)
        assert a.accumulators == []
        assert not a.vectorizable  # multiplicative recurrence


class TestArraysAndMarkup:
    def test_prefetch_and_output_arrays(self, fko_p4e):
        a = fko_p4e.analyze(get_kernel("daxpy").hil)
        assert a.prefetch_arrays == ["X", "Y"]
        assert a.output_arrays == ["Y"]
        assert a.input_arrays == ["X", "Y"]

    def test_swap_both_arrays_output(self, fko_p4e):
        a = fko_p4e.analyze(get_kernel("dswap").hil)
        assert a.output_arrays == ["X", "Y"]

    def test_noprefetch_markup_respected(self, fko_p4e, ddot_src):
        src = ddot_src.replace("@TUNE", "@NOPREFETCH(Y)\n@TUNE")
        a = fko_p4e.analyze(src)
        assert a.prefetch_arrays == ["X"]

    def test_architecture_info_reported(self, fko_p4e, p4e, ddot_src):
        # "FKO reports architecture information such as the numbers of
        # available cache levels and their line sizes"
        a = fko_p4e.analyze(ddot_src)
        assert a.cache_line == p4e.l1.line
        assert len(a.cache_levels) == 2

    def test_describe_is_readable(self, fko_p4e, ddot_src):
        text = fko_p4e.analyze(ddot_src).describe()
        assert "vectorizable: yes" in text
        assert "dot" in text

    def test_no_tuned_loop(self, fko_p4e):
        a = fko_p4e.analyze("ROUTINE f(X: ptr double);\nX += 1;")
        assert not a.has_tuned_loop
