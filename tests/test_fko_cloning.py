"""Tests for function/region cloning and private-register detection."""

import pytest

from repro.fko.clonefn import clone_function, clone_region, \
    private_registers
from repro.fko.controlflow import cleanup_cfg
from repro.hil import compile_hil
from repro.ir import Label, Opcode


class TestCloneFunction:
    def test_blocks_independent(self, ddot_src):
        fn = compile_hil(ddot_src)
        clone = clone_function(fn)
        clone.blocks[0].instrs.clear()
        assert len(fn.blocks[0].instrs) > 0

    def test_instructions_independent(self, ddot_src):
        fn = compile_hil(ddot_src)
        clone = clone_function(fn)
        clone.block(clone.loop.body[0]).instrs[0].op = Opcode.NOP
        assert fn.block(fn.loop.body[0]).instrs[0].op is not Opcode.NOP

    def test_descriptor_copied(self, ddot_src):
        fn = compile_hil(ddot_src)
        clone = clone_function(fn)
        clone.loop.body.append("fake")
        assert "fake" not in fn.loop.body
        clone.loop.ptr_incs["Z"] = 9
        assert "Z" not in fn.loop.ptr_incs

    def test_block_fetch_carried(self, ddot_src):
        fn = compile_hil(ddot_src)
        fn.loop.block_fetch = True
        assert clone_function(fn).loop.block_fetch

    def test_params_shared_registers(self, ddot_src):
        # parameter registers are identity-shared so argument binding
        # works on clones
        fn = compile_hil(ddot_src)
        clone = clone_function(fn)
        assert clone.params[0].reg is fn.params[0].reg


class TestPrivateRegisters:
    def test_dot_privates(self, ddot_src):
        fn = compile_hil(ddot_src)
        cleanup_cfg(fn)
        privates = {r.name for r in private_registers(fn, fn.loop.body)}
        # per-iteration temporaries are private
        assert "x" in privates and "y" in privates
        # the accumulator and pointers are loop-carried: not private
        assert "dot" not in privates
        assert "X" not in privates and "Y" not in privates

    def test_iamax_shared_state(self, iamax_src):
        fn = compile_hil(iamax_src)
        cleanup_cfg(fn)
        privates = {r.name for r in private_registers(fn, fn.loop.body)}
        assert "x" in privates
        # amax and imax escape the loop (read after exit / carried)
        assert "amax" not in privates
        assert "imax" not in privates


class TestCloneRegion:
    def test_labels_suffixed_and_remapped(self, iamax_src):
        fn = compile_hil(iamax_src)
        cleanup_cfg(fn)
        from repro.fko.controlflow import add_explicit_terminators
        region = list(fn.loop.body)
        add_explicit_terminators(fn, region)
        blocks, mapping = clone_region(fn, region, "_c")
        assert all(b.name.endswith("_c") for b in blocks)
        # internal branch targets point at the clone
        for blk in blocks:
            for instr in blk.instrs:
                if instr.is_branch and instr.target is not None:
                    tgt = instr.target.name
                    if tgt.rstrip("_c") in region or tgt in mapping.values():
                        assert not (tgt in region), \
                            f"{blk.name} still targets original {tgt}"

    def test_private_registers_renamed(self, ddot_src):
        fn = compile_hil(ddot_src)
        cleanup_cfg(fn)
        region = list(fn.loop.body)
        blocks, _ = clone_region(fn, region, "_c", rename_private=True)
        orig_regs = {r for b in region
                     for i in fn.block(b).instrs for r in i.regs_written()}
        clone_regs = {r for b in blocks
                      for i in b.instrs for r in i.regs_written()}
        # accumulators/pointers shared; temporaries fresh
        shared = {r.name for r in orig_regs & clone_regs}
        assert "dot" in shared
        fresh = {r.name for r in clone_regs - orig_regs}
        assert "x" in fresh and "y" in fresh

    def test_no_rename_mode(self, ddot_src):
        fn = compile_hil(ddot_src)
        cleanup_cfg(fn)
        region = list(fn.loop.body)
        blocks, _ = clone_region(fn, region, "_c", rename_private=False)
        orig_regs = {r for b in region
                     for i in fn.block(b).instrs for r in i.regs_written()}
        clone_regs = {r for b in blocks
                      for i in b.instrs for r in i.regs_written()}
        assert orig_regs == clone_regs
