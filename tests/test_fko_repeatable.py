"""Tests for the repeatable transforms: copy propagation, DCE, peephole,
control-flow cleanup, and register allocation."""

import pytest

from repro.errors import IRVerifyError
from repro.fko import FKO, TransformParams
from repro.fko.controlflow import (chain_branches, cleanup_cfg, merge_blocks,
                                   remove_empty_blocks, remove_unreachable,
                                   remove_useless_jumps)
from repro.fko.copyprop import eliminate_dead_code, propagate_copies, \
    run_copy_opt
from repro.fko.peephole import fold_loads, remove_trivial
from repro.fko.regalloc import allocate_registers
from repro.ir import (AReg, BasicBlock, DType, Function, IRBuilder, Imm,
                      Instruction, Label, Mem, Opcode, RegClass, VReg,
                      verify)
from repro.kernels import get_kernel
from repro.timing import test_kernel as check_kernel


def straightline():
    fn = Function("f", [])
    b = IRBuilder(fn)
    b.new_block("entry")
    return fn, b


class TestCopyProp:
    def test_copy_forwarded(self):
        fn, b = straightline()
        a = b.fp("a")
        c = b.fp("c")
        d = b.fp("d")
        b.mov(a, Imm(1.0))
        b.mov(c, a)          # c = a
        b.binop(Opcode.FADD, d, c, c)
        b.ret(d)
        propagate_copies(fn)
        add = fn.entry.instrs[2]
        assert add.srcs == (a, a)

    def test_copy_killed_by_redefinition(self):
        fn, b = straightline()
        a, c, d = b.gp("a"), b.gp("c"), b.gp("d")
        b.mov(a, Imm(1))
        b.mov(c, a)
        b.mov(a, Imm(2))     # kills the copy
        b.add(d, c, Imm(0))
        b.ret(d)
        propagate_copies(fn)
        add = fn.entry.instrs[3]
        assert add.srcs[0] == c  # must NOT be rewritten to a

    def test_dce_removes_dead_value(self):
        fn, b = straightline()
        dead = b.gp("dead")
        live = b.gp("live")
        b.mov(dead, Imm(5))
        b.mov(live, Imm(6))
        b.ret(live)
        eliminate_dead_code(fn)
        assert len(fn.entry.instrs) == 2

    def test_dce_keeps_stores(self):
        fn, b = straightline()
        p = b.gp("p")
        v = b.fp("v")
        b.mov(p, Imm(0x1000))
        b.mov(v, Imm(1.0))
        b.store(Mem(p, DType.F64), v)
        b.ret()
        eliminate_dead_code(fn)
        assert any(i.is_store for i in fn.entry.instrs)

    def test_fixpoint_chains(self):
        # a -> b -> c chain collapses and the intermediates die
        fn, bld = straightline()
        a, b2, c, d = (bld.fp(n) for n in "abcd")
        bld.mov(a, Imm(1.0))
        bld.mov(b2, a)
        bld.mov(c, b2)
        bld.binop(Opcode.FADD, d, c, c)
        bld.ret(d)
        run_copy_opt(fn)
        assert len(fn.entry.instrs) == 3  # mov a; fadd; ret


class TestPeephole:
    def test_fold_single_use_load(self):
        fn, b = straightline()
        p = b.gp("p")
        t = b.fp("t")
        acc = b.fp("acc")
        b.mov(p, Imm(0x1000))
        b.mov(acc, Imm(0.0))
        b.load(t, Mem(p, DType.F64, array="X"))
        b.binop(Opcode.FADD, acc, acc, t)
        b.ret(acc)
        assert fold_loads(fn)
        ops = [i.op for i in fn.entry.instrs]
        assert Opcode.FLD not in ops
        fadd = next(i for i in fn.entry.instrs if i.op is Opcode.FADD)
        assert isinstance(fadd.srcs[1], Mem)

    def test_no_fold_when_value_reused(self):
        fn, b = straightline()
        p, t, x, y = b.gp("p"), b.fp("t"), b.fp("x"), b.fp("y")
        b.mov(p, Imm(0x1000))
        b.load(t, Mem(p, DType.F64))
        b.binop(Opcode.FADD, x, t, t)       # src1 == t: not foldable shape
        b.binop(Opcode.FMUL, y, x, t)       # second use
        b.ret(y)
        assert not fold_loads(fn)

    def test_no_fold_across_store(self):
        fn, b = straightline()
        p, t, acc = b.gp("p"), b.fp("t"), b.fp("acc")
        b.mov(p, Imm(0x1000))
        b.mov(acc, Imm(0.0))
        b.load(t, Mem(p, DType.F64))
        b.store(Mem(p, DType.F64), acc)     # may alias
        b.binop(Opcode.FADD, acc, acc, t)
        b.ret(acc)
        assert not fold_loads(fn)

    def test_no_fold_across_pointer_update(self):
        fn, b = straightline()
        p, t, acc = b.gp("p"), b.fp("t"), b.fp("acc")
        b.mov(p, Imm(0x1000))
        b.mov(acc, Imm(0.0))
        b.load(t, Mem(p, DType.F64))
        b.add(p, p, Imm(8))
        b.binop(Opcode.FADD, acc, acc, t)
        b.ret(acc)
        assert not fold_loads(fn)

    def test_remove_trivial_ops(self):
        fn, b = straightline()
        a = b.gp("a")
        b.mov(a, Imm(1))
        b.add(a, a, Imm(0))
        b.mov(a, a)
        b.emit(Instruction(Opcode.NOP))
        b.ret(a)
        remove_trivial(fn)
        assert len(fn.entry.instrs) == 2


class TestControlFlow:
    def _chain(self):
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("entry")
        b.jmp("hop")
        b.new_block("hop")
        b.jmp("end")
        b.new_block("dead")
        b.ret()
        b.new_block("end")
        b.ret()
        return fn

    def test_branch_chaining(self):
        fn = self._chain()
        chain_branches(fn)
        assert fn.entry.instrs[0].target.name == "end"

    def test_unreachable_removed(self):
        fn = self._chain()
        cleanup_cfg(fn)
        assert not fn.has_block("dead")

    def test_useless_jump_removed(self):
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("a")
        b.jmp("b")
        b.new_block("b")
        b.ret()
        remove_useless_jumps(fn)
        assert fn.block("a").instrs == []

    def test_empty_block_elided(self):
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("a")
        b.jmp("empty")
        b.new_block("empty")
        b.new_block("end")
        b.ret()
        cleanup_cfg(fn)
        assert not fn.has_block("empty")
        verify(fn)

    def test_cleanup_preserves_loop_descriptor(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=True, unroll=4))
        loop = k.fn.loop
        for name in [loop.header, loop.latch, loop.preheader, *loop.body]:
            assert k.fn.has_block(name)


class TestRegisterAllocation:
    def test_all_virtuals_eliminated(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=True, unroll=4))
        loop_blocks = set(k.fn.loop.body) | {k.fn.loop.latch}
        for name in loop_blocks:
            for instr in k.fn.block(name).instrs:
                for r in list(instr.regs_read()) + list(instr.regs_written()):
                    assert isinstance(r, AReg), (name, instr)

    def test_respects_register_budget(self, fko_p4e, p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=True, unroll=8))
        used_gp = set()
        used_xmm = set()
        for instr in k.fn.instructions():
            for r in list(instr.regs_read()) + list(instr.regs_written()):
                if isinstance(r, AReg):
                    if r.rclass is RegClass.GP:
                        used_gp.add(r.index)
                    else:
                        used_xmm.add(r.index)
        assert all(i < 8 for i in used_gp)        # incl. reserved esp
        assert all(i < p4e.n_xmm_regs for i in used_xmm)

    def test_high_pressure_spills(self, fko_p4e, ddot_src):
        # massive unroll + AE exceeds 8 XMM registers
        k = fko_p4e.compile(ddot_src,
                            TransformParams(sv=True, unroll=32, ae=16))
        assert k.applied["spilled"] > 0
        assert k.allocation.n_spill_loads > 0

    def test_spilled_code_still_correct(self, fko_p4e):
        spec = get_kernel("ddot")
        k = fko_p4e.compile(spec.hil,
                            TransformParams(sv=True, unroll=32, ae=16))
        assert k.applied["spilled"] > 0
        check_kernel(k, spec, sizes=(0, 1, 63, 64, 65, 200))

    def test_local_allocator_spills_more(self, fko_p4e, ddot_src):
        kg = fko_p4e.compile(ddot_src, TransformParams(
            sv=True, unroll=8, register_allocation="global"))
        kl = fko_p4e.compile(ddot_src, TransformParams(
            sv=True, unroll=8, register_allocation="local"))
        assert kl.applied["spilled"] >= kg.applied["spilled"]

    def test_local_allocator_correct(self, fko_p4e):
        spec = get_kernel("dasum")
        k = fko_p4e.compile(spec.hil, TransformParams(
            sv=True, unroll=8, ae=2, register_allocation="local"))
        check_kernel(k, spec, sizes=(0, 1, 17, 64))

    def test_allocation_off_keeps_virtuals(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(
            sv=True, register_allocation="off"))
        assert k.allocation is None
        assert any(isinstance(r, VReg)
                   for i in k.fn.instructions()
                   for r in i.regs_written())
