"""Per-transform tests: SV, UR, LC, AE, PF, WNT.

Every transform test checks both the *structure* of the rewritten IR and
(through the interpreter) that semantics are preserved — the combination
the paper relies on its tester for.
"""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import Opcode, PrefetchHint, verify
from repro.kernels import get_kernel
from repro.machine import run_function
from repro.timing import test_kernel as check_kernel


def count_ops(fn, op, region=None):
    blocks = fn.blocks if region is None else [fn.block(n) for n in region]
    return sum(1 for b in blocks for i in b.instrs if i.op is op)


class TestVectorize:
    def test_body_becomes_vector(self, fko_p4e, ddot_src):
        # peephole off so the raw vectorized shape is visible
        k = fko_p4e.compile(ddot_src, TransformParams(sv=True, unroll=1,
                                                      peephole=False),
                            debug_verify=True)
        body = k.fn.loop.body
        assert count_ops(k.fn, Opcode.VLD, body) == 2
        assert count_ops(k.fn, Opcode.VMUL, body) == 1
        assert count_ops(k.fn, Opcode.VADD, body) == 1
        assert count_ops(k.fn, Opcode.FLD, body) == 0

    def test_peephole_folds_one_vector_load(self, fko_p4e, ddot_src):
        # with the CISC peephole on, one load becomes a memory operand
        k = fko_p4e.compile(ddot_src, TransformParams(sv=True, unroll=1))
        body = k.fn.loop.body
        assert count_ops(k.fn, Opcode.VLD, body) == 1
        vmuls = [i for n in body for i in k.fn.block(n).instrs
                 if i.op is Opcode.VMUL]
        assert len(vmuls) == 1 and vmuls[0].reads_mem

    def test_cleanup_loop_created(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=True, unroll=1))
        assert k.fn.loop.cleanup_body
        # scalar remainder still uses scalar ops
        assert count_ops(k.fn, Opcode.FLD, k.fn.loop.cleanup_body) >= 1

    def test_reduction_drain_present(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=True, unroll=1))
        assert count_ops(k.fn, Opcode.VHADD) == 1

    def test_invariant_broadcast(self, fko_p4e):
        k = fko_p4e.compile(get_kernel("daxpy").hil,
                            TransformParams(sv=True, unroll=1))
        assert count_ops(k.fn, Opcode.VBCAST) == 1

    def test_rejects_unvectorizable(self, fko_opt, iamax_src):
        from repro.fko.vectorize import vectorize
        from repro.fko.analysis import analyze
        from repro.hil import compile_hil
        from repro.fko.clonefn import clone_function
        from repro.fko.controlflow import cleanup_cfg
        fn = clone_function(compile_hil(iamax_src))
        cleanup_cfg(fn)
        a = analyze(fn)
        with pytest.raises(TransformError, match="not vectorizable"):
            vectorize(fn, a)

    def test_semantics_remainders(self, fko_p4e, ddot_spec):
        k = fko_p4e.compile(ddot_spec.hil, TransformParams(sv=True, unroll=1))
        check_kernel(k, ddot_spec, sizes=(0, 1, 2, 3, 5, 64, 65))


class TestUnroll:
    def test_single_block_body_duplicated(self, fko_p4e, ddot_src):
        k1 = fko_p4e.compile(ddot_src, TransformParams(sv=False, unroll=1))
        k4 = fko_p4e.compile(ddot_src, TransformParams(sv=False, unroll=4))
        b1 = count_ops(k1.fn, Opcode.FMUL, k1.fn.loop.body)
        b4 = count_ops(k4.fn, Opcode.FMUL, k4.fn.loop.body)
        assert b4 == 4 * b1

    def test_pointer_updates_coalesced(self, fko_p4e, ddot_src):
        # "avoiding repetitive index and pointer updates"
        k = fko_p4e.compile(ddot_src, TransformParams(sv=False, unroll=8))
        body_adds = [i for n in k.fn.loop.body
                     for i in k.fn.block(n).instrs
                     if i.op is Opcode.ADD and i.dst is not None
                     and i.dst.rclass.value == "gp"]
        # one bump per array, not eight
        ptr_adds = [i for i in body_adds if i.srcs[1].value == 8 * 8]
        assert len(ptr_adds) == 2

    def test_displacements_shifted(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=False, unroll=4,
                                                      peephole=False))
        disps = sorted({i.mem.disp for n in k.fn.loop.body
                        for i in k.fn.block(n).instrs
                        if i.is_load and i.mem.array == "X"})
        assert disps == [0, 8, 16, 24]

    def test_multiblock_unroll_counter_adjust(self, fko_p4e, iamax_src):
        k = fko_p4e.compile(iamax_src, TransformParams(sv=False, unroll=4))
        verify(k.fn)
        assert k.applied["unroll"] == 4
        # counter-offset temps inserted in copies 1..3
        offsets = [i for i in k.fn.instructions()
                   if "unroll copy" in i.comment]
        assert len(offsets) == 3

    def test_sv_then_unroll_composition(self, fko_p4e, ddot_spec):
        k = fko_p4e.compile(ddot_spec.hil, TransformParams(sv=True, unroll=4))
        assert k.fn.loop.elems_per_iter == 8  # 2 lanes * 4
        check_kernel(k, ddot_spec, sizes=(0, 1, 7, 8, 9, 33))

    def test_unroll_1_noop(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=False, unroll=1))
        assert "unroll" not in k.applied


class TestLoopControl:
    def test_lc_moves_test_to_latch(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=False, unroll=1,
                                                      lc=True))
        latch = k.fn.block(k.fn.loop.latch)
        ops = [i.op for i in latch.instrs]
        assert Opcode.CMP in ops and Opcode.JCC in ops
        assert Opcode.JMP not in ops or ops.index(Opcode.JCC) < len(ops)

    def test_lc_header_becomes_body_entry(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=False, lc=True))
        assert k.fn.loop.header == k.fn.loop.body[0]

    def test_lc_off_keeps_canonical_shape(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=False, lc=False))
        assert k.fn.loop.header not in k.fn.loop.body

    def test_lc_preserves_semantics(self, fko_p4e, ddot_spec):
        for lc in (True, False):
            k = fko_p4e.compile(ddot_spec.hil,
                                TransformParams(sv=True, unroll=2, lc=lc))
            check_kernel(k, ddot_spec, sizes=(0, 1, 5, 16, 33))


class TestAccumulatorExpansion:
    def test_ae_creates_parallel_accumulators(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src,
                            TransformParams(sv=True, unroll=4, ae=2))
        assert k.applied.get("ae") == 2
        body = k.fn.loop.body
        accs = {i.dst for n in body for i in k.fn.block(n).instrs
                if i.op is Opcode.VADD}
        assert len(accs) == 2

    def test_ae_clamped_to_sites(self, fko_p4e, ddot_src):
        # 2 add sites (unroll=2) cannot support 8 accumulators
        k = fko_p4e.compile(ddot_src,
                            TransformParams(sv=True, unroll=2, ae=8))
        body = k.fn.loop.body
        accs = {i.dst for n in body for i in k.fn.block(n).instrs
                if i.op is Opcode.VADD}
        assert len(accs) == 2

    def test_ae_noop_without_accumulator(self, fko_p4e):
        k = fko_p4e.compile(get_kernel("dcopy").hil,
                            TransformParams(sv=True, unroll=4, ae=4))
        assert "ae" not in k.applied

    def test_ae_single_site_noop(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=True, unroll=1,
                                                      ae=4))
        assert "ae" not in k.applied

    def test_ae_preserves_reduction_value(self, fko_p4e, ddot_spec):
        k = fko_p4e.compile(ddot_spec.hil,
                            TransformParams(sv=True, unroll=8, ae=4))
        check_kernel(k, ddot_spec, sizes=(0, 1, 15, 16, 17, 100))


class TestPrefetch:
    def test_one_prefetch_per_line_per_trip(self, fko_p4e, p4e, ddot_src):
        params = TransformParams(
            sv=True, unroll=8,
            prefetch={"X": PrefetchParams(PrefetchHint.NTA, 512)})
        k = fko_p4e.compile(ddot_src, params)
        # 8 trips * 2 lanes * 8 bytes = 128 bytes/trip = 2 lines
        assert count_ops(k.fn, Opcode.PREFETCH, k.fn.loop.body) == 2

    def test_prefetch_distance_in_displacement(self, fko_p4e, ddot_src):
        params = TransformParams(
            sv=True, unroll=1,
            prefetch={"Y": PrefetchParams(PrefetchHint.T0, 768)})
        k = fko_p4e.compile(ddot_src, params)
        pf = [i for i in k.fn.instructions() if i.op is Opcode.PREFETCH]
        assert len(pf) == 1
        assert pf[0].mem.disp == 768
        assert pf[0].hint is PrefetchHint.T0
        assert pf[0].mem.array == "Y"

    def test_disabled_prefetch_inserts_nothing(self, fko_p4e, ddot_src):
        params = TransformParams(sv=True,
                                 prefetch={"X": PrefetchParams(None, 0)})
        k = fko_p4e.compile(ddot_src, params)
        assert count_ops(k.fn, Opcode.PREFETCH) == 0

    def test_prefetch_has_no_semantic_effect(self, fko_p4e, ddot_spec):
        params = TransformParams(
            sv=True, unroll=4,
            prefetch={"X": PrefetchParams(PrefetchHint.NTA, 1024),
                      "Y": PrefetchParams(PrefetchHint.W, 256)})
        k = fko_p4e.compile(ddot_spec.hil, params)
        check_kernel(k, ddot_spec)


class TestNonTemporal:
    def test_stores_flipped(self, fko_p4e):
        spec = get_kernel("dcopy")
        k = fko_p4e.compile(spec.hil, TransformParams(sv=True, wnt=True))
        assert count_ops(k.fn, Opcode.VSTNT, k.fn.loop.body) >= 1
        assert count_ops(k.fn, Opcode.VST, k.fn.loop.body) == 0

    def test_cleanup_stores_stay_temporal(self, fko_p4e):
        spec = get_kernel("dcopy")
        k = fko_p4e.compile(spec.hil, TransformParams(sv=True, wnt=True))
        assert count_ops(k.fn, Opcode.FSTNT, k.fn.loop.cleanup_body) == 0

    def test_wnt_noop_for_pure_input_kernels(self, fko_p4e, ddot_src):
        k = fko_p4e.compile(ddot_src, TransformParams(sv=True, wnt=True))
        assert "wnt" not in k.applied

    def test_wnt_preserves_semantics(self, fko_p4e):
        spec = get_kernel("dswap")
        k = fko_p4e.compile(spec.hil,
                            TransformParams(sv=True, unroll=4, wnt=True))
        check_kernel(k, spec)
