"""Tests for the HIL lexer."""

import pytest

from repro.errors import HILSyntaxError
from repro.hil import tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "eof"]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        toks = kinds("LOOP loop RETURNS returns double X")
        assert toks[0] == ("kw", "LOOP")
        assert toks[1] == ("ident", "loop")
        assert toks[2] == ("kw", "RETURNS")
        assert toks[3] == ("ident", "returns")
        assert toks[4] == ("kw", "double")
        assert toks[5] == ("ident", "X")

    def test_numbers(self):
        toks = kinds("42 3.5 0.0 1e3 2.5e-2")
        assert toks == [("int", "42"), ("float", "3.5"), ("float", "0.0"),
                        ("float", "1e3"), ("float", "2.5e-2")]

    def test_compound_operators_longest_match(self):
        toks = kinds("+= -= *= <= >= == != < > = + - *")
        assert [t for _, t in toks] == ["+=", "-=", "*=", "<=", ">=", "==",
                                        "!=", "<", ">", "=", "+", "-", "*"]

    def test_comments_stripped(self):
        toks = kinds("x # a comment\ny // another\nz")
        assert [t for _, t in toks] == ["x", "y", "z"]

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert toks[0].line == 1 and toks[0].col == 1
        assert toks[1].line == 2 and toks[1].col == 3

    def test_bad_character_raises_with_location(self):
        with pytest.raises(HILSyntaxError) as e:
            tokenize("x = $;")
        assert "1:" in str(e.value)

    def test_eof_token(self):
        toks = tokenize("x")
        assert toks[-1].kind == "eof"

    def test_brackets_and_punctuation(self):
        toks = kinds("X[0]; (a, b):")
        assert [t for _, t in toks] == ["X", "[", "0", "]", ";", "(", "a",
                                        ",", "b", ")", ":"]

    def test_at_markup_symbol(self):
        toks = kinds("@TUNE")
        assert toks == [("sym", "@"), ("ident", "TUNE")]
