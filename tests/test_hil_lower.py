"""Tests for HIL -> IR lowering."""

import numpy as np
import pytest

from repro.hil import compile_hil
from repro.ir import DType, Opcode, verify
from repro.machine import run_function


class TestLoweredShape:
    def test_ddot_structure(self, ddot_src):
        fn = compile_hil(ddot_src)
        verify(fn)
        loop = fn.loop
        assert loop is not None
        assert loop.step == 1
        assert loop.is_single_block
        assert loop.ptr_incs == {"X": 1, "Y": 1}
        assert set(loop.pointers) == {"X", "Y"}
        assert loop.elem is DType.F64

    def test_iamax_multi_block_loop(self, iamax_src):
        fn = compile_hil(iamax_src)
        verify(fn)
        loop = fn.loop
        assert not loop.is_single_block
        # NEWMAX is physically after the RETURN but belongs to the loop
        assert any("NEWMAX" in name for name in loop.body)
        assert loop.step == -1

    def test_memory_refs_tagged_with_array(self, ddot_src):
        fn = compile_hil(ddot_src)
        arrays = set()
        for instr in fn.instructions():
            m = instr.mem
            if m is not None and m.array:
                arrays.add(m.array)
        assert arrays == {"X", "Y"}

    def test_void_routine_gets_ret(self):
        fn = compile_hil("ROUTINE f(X: ptr double);\nX += 1;")
        assert any(i.op is Opcode.RET for i in fn.instructions())

    def test_pointer_advance_scaled_by_element_size(self):
        fn = compile_hil("ROUTINE f(X: ptr float);\nX += 3;")
        adds = [i for i in fn.instructions() if i.op is Opcode.ADD]
        assert adds[0].srcs[1].value == 12  # 3 * sizeof(float)

    def test_untuned_loop_not_recorded(self):
        src = """ROUTINE f(N: int, X: ptr double);
double x;
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    X += 1;
LOOP_END
"""
        fn = compile_hil(src)
        assert fn.loop is None


class TestLoweredSemantics:
    """Execute lowered (untransformed) kernels against references."""

    def test_ddot_executes(self, ddot_src, rng):
        fn = compile_hil(ddot_src)
        X = rng.standard_normal(57)
        Y = rng.standard_normal(57)
        res = run_function(fn, {"X": X.copy(), "Y": Y.copy()}, {"N": 57})
        assert res.ret == pytest.approx(float(X @ Y), rel=1e-12)

    def test_iamax_executes(self, iamax_src, rng):
        fn = compile_hil(iamax_src)
        for n in (1, 2, 17, 100):
            X = rng.standard_normal(n)
            res = run_function(fn, {"X": X.copy()}, {"N": n})
            assert res.ret == int(np.argmax(np.abs(X)))

    def test_downcount_loop_bounds(self):
        # LOOP i = N, 0, -1 must execute exactly N times
        src = """ROUTINE count(N: int) RETURNS int;
int c = 0;
@TUNE
LOOP i = N, 0, -1
LOOP_BODY
    c += 1;
LOOP_END
RETURN c;
"""
        fn = compile_hil(src)
        for n in (0, 1, 5):
            assert run_function(fn, {}, {"N": n}).ret == n

    def test_upcount_loop_bounds(self):
        src = """ROUTINE count(N: int) RETURNS int;
int c = 0;
@TUNE
LOOP i = 0, N
LOOP_BODY
    c += 1;
LOOP_END
RETURN c;
"""
        fn = compile_hil(src)
        for n in (0, 1, 7):
            assert run_function(fn, {}, {"N": n}).ret == n

    def test_scalar_param_passed(self):
        src = """ROUTINE scale1(alpha: double, X: ptr double);
double x;
x = X[0];
x = x * alpha;
X[0] = x;
"""
        fn = compile_hil(src)
        X = np.array([3.0])
        run_function(fn, {"X": X}, {"alpha": 2.5})
        assert X[0] == 7.5

    def test_f32_rounding_semantics(self):
        # single precision must round at every step
        src = """ROUTINE addf(X: ptr float) RETURNS float;
float a;
a = X[0];
a += X[1];
RETURN a;
"""
        fn = compile_hil(src)
        X = np.array([1e8, 1.0], dtype=np.float32)
        res = run_function(fn, {"X": X}, {})
        assert res.ret == float(np.float32(np.float32(1e8) + np.float32(1.0)))
