"""Tests for the HIL parser."""

import pytest

from repro.errors import HILSyntaxError
from repro.hil import ast, parse


MINIMAL = """
ROUTINE f(N: int, X: ptr double);
double x;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    X += 1;
LOOP_END
"""


class TestRoutineHeader:
    def test_name_params_and_types(self):
        r = parse(MINIMAL)
        assert r.name == "f"
        assert [p.name for p in r.params] == ["N", "X"]
        assert r.params[0].dtype == "int"
        assert r.params[1].dtype == "ptr"
        assert r.params[1].elem == "double"
        assert r.returns is None

    def test_returns_clause(self):
        r = parse("ROUTINE g(N: int) RETURNS double;\nRETURN 0.0;")
        assert r.returns == "double"

    def test_empty_params(self):
        r = parse("ROUTINE h();\nRETURN;")
        assert r.params == []

    def test_bad_pointer_elem_rejected(self):
        with pytest.raises(HILSyntaxError):
            parse("ROUTINE f(X: ptr int);")


class TestLoop:
    def test_default_step(self):
        r = parse(MINIMAL)
        loop = next(s for s in r.body if isinstance(s, ast.Loop))
        assert loop.ivar == "i"
        assert loop.step == 1
        assert loop.tuned

    def test_negative_step(self):
        src = """ROUTINE f(N: int);
LOOP i = N, 0, -1
LOOP_BODY
LOOP_END
"""
        r = parse(src)
        loop = r.body[0]
        assert loop.step == -1
        assert isinstance(loop.start, ast.Var)
        assert isinstance(loop.end, ast.Num)

    def test_zero_step_rejected(self):
        with pytest.raises(HILSyntaxError, match="nonzero"):
            parse("ROUTINE f(N: int);\nLOOP i = 0, N, 0\nLOOP_BODY\nLOOP_END")

    def test_missing_loop_end(self):
        with pytest.raises(HILSyntaxError, match="LOOP_END"):
            parse("ROUTINE f(N: int);\nLOOP i = 0, N\nLOOP_BODY\nx = 1;")

    def test_tune_applies_to_next_loop_only(self):
        src = """ROUTINE f(N: int, X: ptr double);
double a;
LOOP i = 0, N
LOOP_BODY
LOOP_END
@TUNE
LOOP j = 0, N
LOOP_BODY
LOOP_END
"""
        r = parse(src)
        loops = [s for s in r.body if isinstance(s, ast.Loop)]
        assert not loops[0].tuned
        assert loops[1].tuned


class TestStatements:
    def test_compound_assignment_ops(self):
        src = """ROUTINE f(N: int, X: ptr double);
double a;
a = 1.0;
a += 2.0;
a -= 3.0;
a *= 4.0;
"""
        r = parse(src)
        ops = [s.op for s in r.body if isinstance(s, ast.Assign)]
        assert ops == ["=", "+=", "-=", "*="]

    def test_array_store_and_load(self):
        src = "ROUTINE f(X: ptr float);\nfloat v;\nv = X[2];\nX[0] = v;"
        r = parse(src)
        load = r.body[1]
        store = r.body[2]
        assert isinstance(load.expr, ast.ArrayRef) and load.expr.offset == 2
        assert isinstance(store.lhs, ast.ArrayRef) and store.lhs.offset == 0

    def test_if_goto_and_labels(self):
        src = """ROUTINE f(N: int);
int k;
IF (k > N) GOTO OUT;
k = 1;
OUT:
RETURN k;
"""
        r = parse(src)
        assert isinstance(r.body[1], ast.IfGoto)
        assert r.body[1].cond.op == ">"
        assert r.body[1].label == "OUT"
        assert isinstance(r.body[3], ast.LabelStmt)

    def test_abs_expression(self):
        src = "ROUTINE f(X: ptr double);\ndouble x;\nx = ABS X[0];"
        r = parse(src)
        e = r.body[1].expr
        assert isinstance(e, ast.Unary) and e.op == "abs"

    def test_precedence_mul_over_add(self):
        src = "ROUTINE f();\nint a;\na = 1 + 2 * 3;"
        e = parse(src).body[1].expr
        assert isinstance(e, ast.Bin) and e.op == "+"
        assert isinstance(e.right, ast.Bin) and e.right.op == "*"

    def test_parenthesized_expression(self):
        src = "ROUTINE f();\nint a;\na = (1 + 2) * 3;"
        e = parse(src).body[1].expr
        assert e.op == "*"
        assert isinstance(e.left, ast.Bin) and e.left.op == "+"

    def test_unary_minus(self):
        src = "ROUTINE f();\nint a;\na = -3;"
        e = parse(src).body[1].expr
        assert isinstance(e, ast.Unary) and e.op == "neg"


class TestMarkup:
    def test_noprefetch_args(self):
        src = """ROUTINE f(X: ptr double, Y: ptr double);
@NOPREFETCH(X, Y)
double a;
"""
        r = parse(src)
        assert r.markup[0].directive == "NOPREFETCH"
        assert r.markup[0].args == ("X", "Y")

    def test_aliasok(self):
        src = "ROUTINE f(X: ptr double, Y: ptr double);\n@ALIASOK(X, Y)\n"
        r = parse(src)
        assert r.markup[0].directive == "ALIASOK"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(HILSyntaxError):
            parse("ROUTINE f(N: int);\nint a;\na = 1")

    def test_garbage_statement(self):
        with pytest.raises(HILSyntaxError):
            parse("ROUTINE f();\n+ 3;")
