"""Tests for the scoped-IF extension (the paper: "Our HIL does not yet
support scoped ifs" — this lifts that restriction)."""

import numpy as np
import pytest

from repro.errors import HILSyntaxError
from repro.fko import FKO, TransformParams
from repro.hil import ast, compile_hil, parse
from repro.kernels import get_kernel
from repro.machine import run_function
from repro.timing.tester import test_function as check_function

IAMAX_SCOPED = """
ROUTINE idamax(N: int, X: ptr double) RETURNS int;
double amax;
double x;
int imax = 0;
amax = X[0];
amax = ABS amax;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    x = ABS x;
    IF (x > amax)
    THEN
        amax = x;
        imax = i;
    IF_END
    X += 1;
LOOP_END
RETURN imax;
"""

CLAMP = """
ROUTINE clamp(N: int, X: ptr double, lo: double, hi: double);
double x;
@TUNE
LOOP i = 0, N
LOOP_BODY
    x = X[0];
    IF (x < lo)
    THEN
        x = lo;
    ELSE
        IF (x > hi)
        THEN
            x = hi;
        IF_END
    IF_END
    X[0] = x;
    X += 1;
LOOP_END
"""


class TestParsing:
    def test_if_block_parsed(self):
        r = parse(IAMAX_SCOPED)
        loop = next(s for s in r.body if isinstance(s, ast.Loop))
        ifb = next(s for s in loop.body if isinstance(s, ast.IfBlock))
        assert len(ifb.then_body) == 2
        assert ifb.else_body == []

    def test_if_else_parsed(self):
        r = parse(CLAMP)
        loop = next(s for s in r.body if isinstance(s, ast.Loop))
        ifb = next(s for s in loop.body if isinstance(s, ast.IfBlock))
        assert len(ifb.then_body) == 1
        assert len(ifb.else_body) == 1
        inner = ifb.else_body[0]
        assert isinstance(inner, ast.IfBlock)

    def test_if_goto_form_still_works(self):
        r = parse("ROUTINE f(N: int);\nIF (N > 0) GOTO L;\nL:\n")
        assert isinstance(r.body[0], ast.IfGoto)

    def test_missing_if_end(self):
        with pytest.raises(HILSyntaxError, match="IF_END"):
            parse("ROUTINE f(N: int);\nIF (N > 0)\nTHEN\nint a;\n")

    def test_duplicate_else(self):
        with pytest.raises(HILSyntaxError, match="duplicate ELSE"):
            parse("ROUTINE f(N: int);\nint a;\nIF (N > 0)\nTHEN\n"
                  "ELSE\nELSE\nIF_END\n")


class TestSemanticsAndLowering:
    def test_scoped_iamax_matches_reference(self):
        spec = get_kernel("idamax")
        fn = compile_hil(IAMAX_SCOPED)
        check_function(fn, spec)

    def test_scoped_iamax_through_full_pipeline(self, p4e):
        spec = get_kernel("idamax")
        fko = FKO(p4e)
        for ur in (1, 4, 8):
            k = fko.compile(IAMAX_SCOPED, TransformParams(sv=True, unroll=ur),
                            debug_verify=True)
            check_function(k.fn, spec)

    def test_scoped_body_blocks_reject_vectorization(self, p4e):
        a = FKO(p4e).analyze(IAMAX_SCOPED)
        assert not a.vectorizable
        assert "control flow" in " ".join(a.not_vectorizable_reasons)

    def test_clamp_if_else_semantics(self, p4e, rng):
        for ur in (1, 4):
            k = FKO(p4e).compile(CLAMP, TransformParams(sv=False, unroll=ur),
                                 debug_verify=True)
            X = (rng.standard_normal(53) * 3)
            got = X.copy()
            run_function(k.fn, {"X": got}, {"N": 53, "lo": -1.0, "hi": 1.0})
            assert np.allclose(got, np.clip(X, -1.0, 1.0))

    def test_else_branch_only_taken_when_cond_false(self):
        src = """ROUTINE pick(a: int) RETURNS int;
int r;
IF (a > 10)
THEN
    r = 1;
ELSE
    r = 2;
IF_END
RETURN r;
"""
        fn = compile_hil(src)
        assert run_function(fn, {}, {"a": 11}).ret == 1
        assert run_function(fn, {}, {"a": 10}).ret == 2

    def test_labels_inside_scoped_if(self):
        # scoped ifs and GOTO can mix
        src = """ROUTINE f(a: int) RETURNS int;
int r = 0;
IF (a > 0)
THEN
    GOTO OUT;
IF_END
r = 5;
OUT:
RETURN r;
"""
        fn = compile_hil(src)
        assert run_function(fn, {}, {"a": 1}).ret == 0
        assert run_function(fn, {}, {"a": -1}).ret == 5
