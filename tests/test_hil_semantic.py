"""Tests for HIL semantic analysis."""

import pytest

from repro.errors import HILSemanticError
from repro.hil import check, parse
from repro.ir import DType


def chk(src):
    return check(parse(src))


class TestDeclarations:
    def test_undeclared_use_rejected(self):
        with pytest.raises(HILSemanticError, match="undeclared"):
            chk("ROUTINE f();\nint a;\na = b;")

    def test_redeclaration_rejected(self):
        with pytest.raises(HILSemanticError, match="redeclaration"):
            chk("ROUTINE f();\nint a;\nint a;")

    def test_duplicate_param_rejected(self):
        with pytest.raises(HILSemanticError, match="duplicate"):
            chk("ROUTINE f(N: int, N: int);")

    def test_symbols_include_params_and_vars(self):
        c = chk("ROUTINE f(N: int, X: ptr double);\ndouble a;")
        assert set(c.symbols) == {"N", "X", "a"}
        assert c.symbols["X"].is_pointer
        assert c.symbols["X"].elem is DType.F64


class TestTypes:
    def test_single_fp_precision_enforced(self):
        with pytest.raises(HILSemanticError, match="mixed float precisions"):
            chk("ROUTINE f(X: ptr double);\nfloat a;")

    def test_fp_dtype_detected(self):
        assert chk("ROUTINE f(X: ptr float);").fp_dtype is DType.F32
        assert chk("ROUTINE f(X: ptr double);").fp_dtype is DType.F64

    def test_int_float_var_mix_rejected(self):
        with pytest.raises(HILSemanticError):
            chk("ROUTINE f();\nint a;\ndouble b;\nb = b + a;")

    def test_int_literal_promotes(self):
        chk("ROUTINE f();\ndouble b;\nb = b + 1;")  # fine

    def test_abs_requires_float(self):
        with pytest.raises(HILSemanticError, match="ABS"):
            chk("ROUTINE f();\nint a;\na = ABS a;")


class TestPointers:
    def test_pointer_as_value_rejected(self):
        with pytest.raises(HILSemanticError, match="used as a value"):
            chk("ROUTINE f(X: ptr double);\ndouble a;\na = X;")

    def test_pointer_assignment_ops_restricted(self):
        with pytest.raises(HILSemanticError, match="pointers only support"):
            chk("ROUTINE f(X: ptr double);\nX = 1;")

    def test_pointer_advance_ok(self):
        chk("ROUTINE f(X: ptr double);\nX += 1;\nX -= 2;")

    def test_array_ref_requires_pointer(self):
        with pytest.raises(HILSemanticError):
            chk("ROUTINE f(N: int);\ndouble a;\na = N[0];")


class TestLoops:
    def test_nested_loops_allowed(self):
        src = """ROUTINE f(N: int);
LOOP i = 0, N
LOOP_BODY
LOOP j = 0, N
LOOP_BODY
LOOP_END
LOOP_END
"""
        chk(src)  # nested loops are supported (Level 2 kernels)

    def test_tune_must_be_innermost(self):
        src = """ROUTINE f(N: int);
@TUNE
LOOP i = 0, N
LOOP_BODY
LOOP j = 0, N
LOOP_BODY
LOOP_END
LOOP_END
"""
        with pytest.raises(HILSemanticError, match="innermost"):
            chk(src)

    def test_two_tuned_loops_rejected(self):
        src = """ROUTINE f(N: int);
@TUNE
LOOP i = 0, N
LOOP_BODY
LOOP_END
@TUNE
LOOP j = 0, N
LOOP_BODY
LOOP_END
"""
        with pytest.raises(HILSemanticError, match="more than one"):
            chk(src)

    def test_float_bounds_rejected(self):
        src = "ROUTINE f();\ndouble a;\nLOOP i = 0, a\nLOOP_BODY\nLOOP_END"
        with pytest.raises(HILSemanticError, match="bounds"):
            chk(src)

    def test_loop_var_assignment_rejected(self):
        src = """ROUTINE f(N: int);
LOOP i = 0, N
LOOP_BODY
    i = 3;
LOOP_END
"""
        with pytest.raises(HILSemanticError, match="may not be assigned"):
            chk(src)

    def test_tuned_loop_recorded(self, ddot_src):
        c = chk(ddot_src)
        assert c.tuned_loop is not None
        assert c.tuned_loop.ivar == "i"


class TestLabelsAndMarkup:
    def test_goto_undefined_label(self):
        with pytest.raises(HILSemanticError, match="undefined label"):
            chk("ROUTINE f();\nGOTO nowhere;")

    def test_duplicate_label(self):
        with pytest.raises(HILSemanticError, match="duplicate label"):
            chk("ROUTINE f();\nL:\nL:\n")

    def test_noprefetch_validated(self):
        with pytest.raises(HILSemanticError, match="NOPREFETCH"):
            chk("ROUTINE f(N: int);\n@NOPREFETCH(N)\n")

    def test_noprefetch_recorded(self):
        c = chk("ROUTINE f(X: ptr double);\n@NOPREFETCH(X)\n")
        assert c.noprefetch == {"X"}

    def test_aliasok_needs_two(self):
        with pytest.raises(HILSemanticError, match="two"):
            chk("ROUTINE f(X: ptr double);\n@ALIASOK(X)\n")

    def test_unknown_markup(self):
        with pytest.raises(HILSemanticError, match="unknown mark-up"):
            chk("ROUTINE f();\n@WAT\n")


def test_paper_kernels_all_check():
    from repro.kernels import all_kernels
    for spec in all_kernels():
        c = chk(spec.hil)
        assert c.tuned_loop is not None, spec.name
