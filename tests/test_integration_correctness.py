"""Integration: every kernel x a grid of transform parameters must agree
with the NumPy reference when executed in the functional interpreter.

This is the reproduction's equivalent of the paper's tester running
inside the search loop: *any* combination of transformations the search
can reach must preserve semantics on both machines.
"""

import pytest

from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import PrefetchHint
from repro.kernels import KERNEL_ORDER, get_kernel
from repro.machine import opteron, pentium4e
from repro.timing.tester import test_function as check_function

PARAM_GRID = [
    # (sv, unroll, lc, ae, wnt, pf_dist)
    (False, 1, False, 1, False, 0),     # completely plain
    (True, 1, True, 1, False, 0),       # SV only
    (False, 8, True, 1, False, 512),    # scalar unroll + prefetch
    (True, 4, True, 2, True, 1024),     # the works
    (True, 16, True, 8, False, 256),    # heavy AE (spill pressure)
]

SIZES = (0, 1, 2, 3, 7, 8, 9, 31, 64, 100)


def make_params(spec, sv, unroll, lc, ae, wnt, pf_dist):
    p = TransformParams(sv=sv, unroll=unroll, lc=lc, ae=ae, wnt=wnt)
    if pf_dist:
        for arr in spec.vector_args:
            p.prefetch[arr] = PrefetchParams(PrefetchHint.NTA, pf_dist)
    return p


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
@pytest.mark.parametrize("grid_idx", range(len(PARAM_GRID)))
def test_kernel_param_grid_p4e(kernel, grid_idx, p4e):
    spec = get_kernel(kernel)
    params = make_params(spec, *PARAM_GRID[grid_idx])
    k = FKO(p4e).compile(spec.hil, params, debug_verify=True)
    check_function(k.fn, spec, sizes=SIZES)


@pytest.mark.parametrize("kernel", ["sswap", "dscal", "scopy", "daxpy",
                                    "sdot", "dasum", "isamax"])
def test_kernel_works_on_opteron(kernel, opt):
    spec = get_kernel(kernel)
    params = make_params(spec, True, 4, True, 2, True, 512)
    k = FKO(opt).compile(spec.hil, params, debug_verify=True)
    check_function(k.fn, spec, sizes=SIZES)


def test_local_allocator_grid(p4e):
    for kernel in ("ddot", "dswap", "idamax"):
        spec = get_kernel(kernel)
        params = make_params(spec, True, 8, True, 4, False, 512)
        params.register_allocation = "local"
        k = FKO(p4e).compile(spec.hil, params, debug_verify=True)
        check_function(k.fn, spec, sizes=(0, 5, 33, 100))


def test_no_allocation_grid(p4e):
    for kernel in ("ddot", "scopy"):
        spec = get_kernel(kernel)
        params = make_params(spec, True, 4, True, 2, False, 0)
        params.register_allocation = "off"
        k = FKO(p4e).compile(spec.hil, params, debug_verify=True)
        check_function(k.fn, spec, sizes=(0, 5, 33))
