"""Tests for liveness analysis."""

from repro.hil import compile_hil
from repro.ir import Imm, IRBuilder, Function, Liveness, Opcode, \
    max_register_pressure, RegClass, Cond


def test_straightline_liveness():
    fn = Function("f", [])
    b = IRBuilder(fn)
    b.new_block("entry")
    a = b.gp("a")
    c = b.gp("c")
    b.mov(a, Imm(1))
    b.add(c, a, Imm(2))
    b.ret(c)
    lv = Liveness(fn)
    after = lv.per_instruction(fn.block("entry"))
    # a live after its def (used by add), dead after the add
    assert a in after[0]
    assert a not in after[1]
    assert c in after[1]


def test_loop_carried_liveness(ddot_src):
    fn = compile_hil(ddot_src)
    lv = Liveness(fn)
    loop = fn.loop
    # the accumulator home register is live into the body (loop carried)
    body_live = lv.live_in[loop.body[0]]
    names = {r.name for r in body_live}
    assert "dot" in names
    assert "X" in names and "Y" in names

    # loop counter is live around the back edge
    header_live = lv.live_in[loop.header]
    assert loop.counter in header_live


def test_dead_def_not_live():
    fn = Function("f", [])
    b = IRBuilder(fn)
    b.new_block("entry")
    dead = b.gp("dead")
    b.mov(dead, Imm(5))
    b.ret()
    lv = Liveness(fn)
    after = lv.per_instruction(fn.block("entry"))
    assert dead not in after[0]


def test_max_register_pressure_counts_class(ddot_src):
    fn = compile_hil(ddot_src)
    gp_peak = max_register_pressure(fn, RegClass.GP)
    fp_peak = max_register_pressure(fn, RegClass.FP)
    # N, X, Y, i plus temporaries; always fits x86
    assert 3 <= gp_peak <= 8
    assert 1 <= fp_peak <= 6


def test_liveness_through_diamond():
    fn = Function("f", [])
    b = IRBuilder(fn)
    b.new_block("entry")
    x = b.gp("x")
    y = b.gp("y")
    b.mov(x, Imm(1))
    b.mov(y, Imm(9))
    b.cmp(x, Imm(0))
    b.jcc(Cond.GT, "right")
    b.new_block("left")
    b.jmp("join")
    b.new_block("right")
    b.new_block("join")
    b.ret(y)
    lv = Liveness(fn)
    # y is live through both arms to the join
    assert y in lv.live_in["left"]
    assert y in lv.live_in["right"]
    assert y in lv.live_in["join"]
    assert x not in lv.live_in["join"]
