"""Tests for blocks, functions, derived CFG, builder, printer, verifier."""

import pytest

from repro.errors import IRError, IRVerifyError
from repro.ir import (BasicBlock, Cond, DType, Function, IRBuilder, Imm,
                      Instruction, Label, Mem, Opcode, Param, RegClass,
                      VReg, format_function, verify)


def build_diamond():
    """entry -> (then | else) -> join -> ret"""
    fn = Function("diamond", [])
    b = IRBuilder(fn)
    x = b.gp("x")
    b.new_block("entry")
    b.mov(x, Imm(1))
    b.cmp(x, Imm(0))
    b.jcc(Cond.GT, "then")
    b.new_block("else")
    b.mov(x, Imm(2))
    b.jmp("join")
    b.new_block("then")
    b.mov(x, Imm(3))
    b.new_block("join")
    b.ret(x)
    return fn, x


class TestCFG:
    def test_successors_fallthrough_and_branch(self):
        fn, _ = build_diamond()
        entry = fn.block("entry")
        succs = fn.successors(entry)
        assert set(succs) == {"then", "else"}

    def test_jmp_has_single_successor(self):
        fn, _ = build_diamond()
        assert fn.successors(fn.block("else")) == ["join"]

    def test_predecessors(self):
        fn, _ = build_diamond()
        assert set(fn.predecessors("join")) == {"else", "then"}

    def test_reachable_all(self):
        fn, _ = build_diamond()
        assert fn.reachable() == {"entry", "else", "then", "join"}

    def test_unreachable_detected(self):
        fn, _ = build_diamond()
        dead = BasicBlock("dead", [Instruction(Opcode.RET)])
        fn.add_block(dead)
        assert "dead" not in fn.reachable()

    def test_duplicate_block_rejected(self):
        fn, _ = build_diamond()
        with pytest.raises(IRError):
            fn.add_block(BasicBlock("entry"))

    def test_block_lookup_missing(self):
        fn, _ = build_diamond()
        with pytest.raises(IRError):
            fn.block("nope")

    def test_insert_after(self):
        fn, _ = build_diamond()
        fn.add_block(BasicBlock("mid"), after="entry")
        assert [b.name for b in fn.blocks][:2] == ["entry", "mid"]


class TestVerifier:
    def test_diamond_verifies(self):
        fn, _ = build_diamond()
        verify(fn)

    def test_branch_to_unknown_block(self):
        fn, _ = build_diamond()
        fn.block("else").instrs[-1] = Instruction(
            Opcode.JMP, None, (Label("missing"),))
        with pytest.raises(IRVerifyError, match="unknown block"):
            verify(fn)

    def test_jcc_requires_compare(self):
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("entry")
        b.emit(Instruction(Opcode.JCC, None, (Label("entry"),), cond=Cond.LT))
        with pytest.raises(IRVerifyError, match="no preceding compare"):
            verify(fn)

    def test_jcc_with_clobbered_flags_rejected(self):
        # CMP ... ; ADD ... ; JCC — the ADD overwrites EFLAGS, so the
        # branch no longer tests the compare's result
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("entry")
        x = b.gp("x")
        b.mov(x, Imm(1))
        b.cmp(x, Imm(0))
        b.add(x, x, Imm(1))
        b.jcc(Cond.GT, "entry")
        b.new_block("exit")
        b.ret()
        with pytest.raises(IRVerifyError, match="clobbered|no preceding"):
            verify(fn)

    def test_jcc_after_recompare_accepted(self):
        # a fresh compare after the clobber makes the branch valid again
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("entry")
        x = b.gp("x")
        b.mov(x, Imm(1))
        b.cmp(x, Imm(0))
        b.add(x, x, Imm(1))
        b.cmp(x, Imm(0))
        b.jcc(Cond.GT, "entry")
        b.new_block("exit")
        b.ret()
        verify(fn)

    def test_terminator_mid_block_rejected(self):
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("entry")
        b.ret()
        b.emit(Instruction(Opcode.NOP))
        with pytest.raises(IRVerifyError, match="terminator"):
            verify(fn)

    def test_undefined_vreg_read(self):
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("entry")
        ghost = b.gp("ghost")
        out = b.gp("out")
        b.add(out, ghost, Imm(1))
        b.ret()
        with pytest.raises(IRVerifyError, match="never defined"):
            verify(fn)

    def test_wrong_dst_class(self):
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("entry")
        wrong = VReg("w", RegClass.GP, DType.I64)
        b.emit(Instruction(Opcode.FADD, wrong,
                           (VReg("a", RegClass.FP, DType.F64),
                            VReg("a2", RegClass.FP, DType.F64))))
        b.ret()
        with pytest.raises(IRVerifyError, match="dst class"):
            verify(fn)

    def test_store_operand_shape(self):
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("entry")
        f = VReg("v", RegClass.FP, DType.F64)
        b.emit(Instruction(Opcode.FMOV, f, (Imm(0.0),)))
        b.emit(Instruction(Opcode.FST, None, (f, f)))  # src0 must be Mem
        b.ret()
        with pytest.raises(IRVerifyError, match="store"):
            verify(fn)

    def test_prefetch_requires_hint(self):
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("entry")
        p = b.gp("p")
        b.mov(p, Imm(0))
        b.emit(Instruction(Opcode.PREFETCH, None, (Mem(p, DType.F64),)))
        b.ret()
        with pytest.raises(IRVerifyError, match="hint"):
            verify(fn)


class TestPrinter:
    def test_format_contains_blocks_and_params(self, ddot_src):
        from repro.hil import compile_hil
        fn = compile_hil(ddot_src)
        text = format_function(fn)
        assert "# function ddot" in text
        assert "loop0_body:" in text
        assert "fadd" in text
        assert "tuned loop" in text

    def test_format_stable_roundtrip(self):
        fn, _ = build_diamond()
        assert format_function(fn) == format_function(fn)
