"""Tests for repro.ir.instructions."""

import pytest

from repro.ir import (Cond, DType, Imm, Instruction, Label, Mem, OP_INFO,
                      Opcode, PrefetchHint, RegClass, VReg, sse)


def gp(name="g"):
    return VReg(name, RegClass.GP, DType.I64)


def fp(name="f"):
    return VReg(name, RegClass.FP, DType.F64)


def mem(base=None, **kw):
    return Mem(base or VReg("p", RegClass.GP, DType.PTR), DType.F64, **kw)


class TestOpInfo:
    def test_all_opcodes_have_info(self):
        for op in Opcode:
            assert op in OP_INFO, f"missing OP_INFO for {op}"

    def test_store_metadata(self):
        assert not OP_INFO[Opcode.FST].has_dst
        assert OP_INFO[Opcode.FST].n_srcs == 2

    def test_flags_setters(self):
        for op in (Opcode.CMP, Opcode.FCMP, Opcode.TEST):
            assert OP_INFO[op].sets_flags

    def test_terminators(self):
        assert OP_INFO[Opcode.JMP].is_terminator
        assert OP_INFO[Opcode.RET].is_terminator
        assert not OP_INFO[Opcode.JCC].is_terminator  # conditional: falls thru


class TestInstructionProperties:
    def test_load_store_predicates(self):
        ld = Instruction(Opcode.FLD, fp(), (mem(),))
        st = Instruction(Opcode.FST, None, (mem(), fp()))
        assert ld.is_load and not ld.is_store
        assert st.is_store and not st.is_load
        assert ld.reads_mem and not ld.writes_mem
        assert st.writes_mem

    def test_nontemporal_predicate(self):
        nt = Instruction(Opcode.VSTNT, None,
                         (Mem(gp("p"), sse(DType.F64)),
                          VReg("v", RegClass.VEC, sse(DType.F64))))
        assert nt.is_nontemporal and nt.is_store

    def test_cisc_memory_operand_reads_mem(self):
        i = Instruction(Opcode.FADD, fp("d"), (fp("a"), mem()))
        assert i.reads_mem and not i.is_load

    def test_mem_accessor_finds_reference(self):
        m = mem(disp=24)
        i = Instruction(Opcode.FMUL, fp("d"), (fp("a"), m))
        assert i.mem is m
        st = Instruction(Opcode.FST, None, (m, fp()))
        assert st.mem is m

    def test_branch_target(self):
        j = Instruction(Opcode.JMP, None, (Label("loop"),))
        assert j.target.name == "loop"
        assert j.is_branch

    def test_regs_read_includes_address_registers(self):
        base = gp("base")
        idx = gp("idx")
        m = Mem(base, DType.F64, index=idx, scale=8)
        i = Instruction(Opcode.FLD, fp(), (m,))
        read = set(i.regs_read())
        assert base in read and idx in read

    def test_store_dst_mem_addresses_are_reads(self):
        base = gp("base")
        val = fp("v")
        st = Instruction(Opcode.FST, None, (Mem(base, DType.F64), val))
        read = set(st.regs_read())
        assert base in read and val in read
        assert list(st.regs_written()) == []


class TestSubstitute:
    def test_substitute_srcs_and_dst(self):
        a, b, c = fp("a"), fp("b"), fp("c")
        i = Instruction(Opcode.FADD, a, (a, b))
        ni = i.substitute({a: c})
        assert ni.dst == c
        assert ni.srcs == (c, b)

    def test_substitute_into_mem_base(self):
        old = gp("old")
        new = gp("new")
        i = Instruction(Opcode.FLD, fp(), (Mem(old, DType.F64, disp=8),))
        ni = i.substitute({old: new})
        assert ni.srcs[0].base == new
        assert ni.srcs[0].disp == 8

    def test_substitute_preserves_hint_and_cond(self):
        i = Instruction(Opcode.PREFETCH, None, (mem(),),
                        hint=PrefetchHint.NTA)
        ni = i.substitute({})
        assert ni.hint is PrefetchHint.NTA
        j = Instruction(Opcode.JCC, None, (Label("x"),), cond=Cond.LT)
        assert j.substitute({}).cond is Cond.LT

    def test_copy_is_independent(self):
        i = Instruction(Opcode.FADD, fp("a"), (fp("b"), fp("c")))
        c = i.copy()
        c.op = Opcode.FMUL
        assert i.op is Opcode.FADD


class TestCond:
    def test_negation_involution(self):
        for c in Cond:
            assert c.negate().negate() is c

    def test_negation_pairs(self):
        assert Cond.LT.negate() is Cond.GE
        assert Cond.EQ.negate() is Cond.NE
