"""Tests for repro.ir.operands."""

import pytest

from repro.ir import (AReg, DType, Imm, Label, Mem, RegClass, VReg, is_reg,
                      sse)


class TestVReg:
    def test_unique_uids(self):
        a = VReg("x", RegClass.FP, DType.F64)
        b = VReg("x", RegClass.FP, DType.F64)
        assert a != b
        assert a.uid != b.uid

    def test_identity_in_sets(self):
        a = VReg("x", RegClass.FP, DType.F64)
        assert a in {a}
        assert a == a

    def test_is_virtual(self):
        assert VReg("x", RegClass.GP, DType.I64).is_virtual
        assert not AReg("eax", RegClass.GP, DType.I64, 0).is_virtual


class TestAReg:
    def test_same_name_same_identity(self):
        a = AReg("xmm0", RegClass.FP, DType.F64, 0)
        b = AReg("xmm0", RegClass.FP, DType.F64, 0)
        assert a == b

    def test_class_distinguishes(self):
        fp = AReg("xmm0", RegClass.FP, DType.F64, 0)
        vec = AReg("xmm0", RegClass.VEC, sse(DType.F64), 0)
        assert fp != vec


class TestMem:
    def test_valid_scales(self):
        base = VReg("p", RegClass.GP, DType.PTR)
        for s in (1, 2, 4, 8):
            Mem(base, DType.F64, scale=s)

    def test_invalid_scale_rejected(self):
        base = VReg("p", RegClass.GP, DType.PTR)
        with pytest.raises(ValueError):
            Mem(base, DType.F64, scale=3)

    def test_with_disp_preserves_fields(self):
        base = VReg("p", RegClass.GP, DType.PTR)
        idx = VReg("i", RegClass.GP, DType.I64)
        m = Mem(base, DType.F32, index=idx, scale=4, disp=8, array="X")
        m2 = m.with_disp(64)
        assert m2.disp == 64
        assert m2.base is base and m2.index is idx
        assert m2.scale == 4 and m2.array == "X"

    def test_with_base_swaps_base(self):
        base = VReg("p", RegClass.GP, DType.PTR)
        base2 = VReg("q", RegClass.GP, DType.PTR)
        m = Mem(base, DType.F64, disp=16, array="Y")
        m2 = m.with_base(base2)
        assert m2.base is base2 and m2.disp == 16 and m2.array == "Y"

    def test_size_follows_dtype(self):
        base = VReg("p", RegClass.GP, DType.PTR)
        assert Mem(base, DType.F32).size == 4
        assert Mem(base, sse(DType.F32)).size == 16


def test_is_reg_predicate():
    assert is_reg(VReg("a", RegClass.GP, DType.I64))
    assert is_reg(AReg("eax", RegClass.GP, DType.I64, 0))
    assert not is_reg(Imm(3))
    assert not is_reg(Label("foo"))
