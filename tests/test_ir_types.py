"""Tests for repro.ir.types."""

import pytest

from repro.ir.types import DType, VecType, sse, veclen, VEC_BYTES


class TestDType:
    def test_sizes(self):
        assert DType.F32.size == 4
        assert DType.F64.size == 8
        assert DType.I64.size == 8
        assert DType.PTR.size == 8

    def test_float_classification(self):
        assert DType.F32.is_float and DType.F64.is_float
        assert not DType.I64.is_float and not DType.PTR.is_float

    def test_int_classification(self):
        assert DType.I64.is_int and DType.PTR.is_int
        assert not DType.F32.is_int

    def test_repr_compact(self):
        assert repr(DType.F64) == "f64"


class TestVecType:
    def test_sse_f32_has_4_lanes(self):
        vt = sse(DType.F32)
        assert vt.lanes == 4
        assert vt.size == VEC_BYTES

    def test_sse_f64_has_2_lanes(self):
        vt = sse(DType.F64)
        assert vt.lanes == 2
        assert vt.size == VEC_BYTES

    def test_veclen_matches_paper(self):
        # "4 for single precision, 2 for double" (section 2.2.3)
        assert veclen(DType.F32) == 4
        assert veclen(DType.F64) == 2

    def test_rejects_int_elements(self):
        with pytest.raises(ValueError):
            VecType(DType.I64, 2)

    def test_rejects_single_lane(self):
        with pytest.raises(ValueError):
            VecType(DType.F64, 1)

    def test_equality_and_hash(self):
        assert sse(DType.F32) == sse(DType.F32)
        assert sse(DType.F32) != sse(DType.F64)
        assert len({sse(DType.F32), sse(DType.F32)}) == 1

    def test_repr(self):
        assert repr(sse(DType.F32)) == "f32x4"
