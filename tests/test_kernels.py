"""Tests for the Level 1 BLAS kernel registry and references."""

import numpy as np
import pytest

from repro.kernels import KERNEL_ORDER, all_kernels, get_kernel, reference
from repro.kernels.blas1 import KernelSpec


class TestRegistry:
    def test_fourteen_kernels_in_paper_order(self):
        assert len(KERNEL_ORDER) == 14
        assert KERNEL_ORDER[0] == "sswap"
        assert KERNEL_ORDER[-1] == "idamax"

    def test_precision_variants(self):
        for base in ("swap", "scal", "copy", "axpy", "dot", "asum"):
            s = get_kernel("s" + base)
            d = get_kernel("d" + base)
            assert s.dtype == np.float32
            assert d.dtype == np.float64
            assert s.base == d.base == base

    def test_iamax_naming_convention(self):
        # "the API puts the precision prefix in this routine as the
        # second character" (section 3.1)
        assert get_kernel("isamax").precision == "s"
        assert get_kernel("idamax").precision == "d"

    def test_flop_conventions_match_table1(self):
        assert get_kernel("dswap").flops(100) == 100
        assert get_kernel("dscal").flops(100) == 100
        assert get_kernel("dcopy").flops(100) == 100
        assert get_kernel("daxpy").flops(100) == 200
        assert get_kernel("ddot").flops(100) == 200
        assert get_kernel("dasum").flops(100) == 200
        assert get_kernel("idamax").flops(100) == 200

    def test_loop_form_is_atlas_downcount(self):
        # ATLAS reference sources use the form icc cannot vectorize
        for spec in all_kernels():
            assert spec.loop_form == "downcount"

    def test_output_args(self):
        assert get_kernel("dswap").output_args == ("X", "Y")
        assert get_kernel("dcopy").output_args == ("Y",)
        assert get_kernel("ddot").output_args == ()

    def test_hil_sources_compile(self):
        from repro.hil import compile_hil
        from repro.ir import verify
        for spec in all_kernels():
            fn = compile_hil(spec.hil)
            verify(fn)
            assert fn.loop is not None, spec.name


class TestReferences:
    def test_swap(self, rng):
        x = rng.standard_normal(10)
        y = rng.standard_normal(10)
        arrays = {"X": x.copy(), "Y": y.copy()}
        reference(get_kernel("dswap"), arrays, {})
        assert np.array_equal(arrays["X"], y)
        assert np.array_equal(arrays["Y"], x)

    def test_scal(self, rng):
        x = rng.standard_normal(10)
        arrays = {"X": x.copy()}
        reference(get_kernel("dscal"), arrays, {"alpha": 2.0})
        assert np.allclose(arrays["X"], 2.0 * x)

    def test_axpy(self, rng):
        x = rng.standard_normal(10)
        y = rng.standard_normal(10)
        arrays = {"X": x.copy(), "Y": y.copy()}
        reference(get_kernel("daxpy"), arrays, {"alpha": -1.5})
        assert np.allclose(arrays["Y"], y - 1.5 * x)

    def test_dot_asum(self, rng):
        x = rng.standard_normal(10)
        y = rng.standard_normal(10)
        assert reference(get_kernel("ddot"),
                         {"X": x.copy(), "Y": y.copy()}, {}) == \
            pytest.approx(float(x @ y))
        assert reference(get_kernel("dasum"), {"X": x.copy()}, {}) == \
            pytest.approx(float(np.abs(x).sum()))

    def test_iamax_first_occurrence(self):
        x = np.array([1.0, -5.0, 5.0, 2.0])
        assert reference(get_kernel("idamax"), {"X": x}, {}) == 1

    def test_iamax_empty(self):
        assert reference(get_kernel("idamax"),
                         {"X": np.zeros(0)}, {}) == 0
