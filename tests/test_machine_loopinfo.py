"""Tests for the loop summary extractor (machine.loopinfo)."""

import pytest

from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import PrefetchHint
from repro.kernels import get_kernel
from repro.machine import pentium4e, summarize


@pytest.fixture(scope="module")
def fko():
    return FKO(pentium4e())


class TestStreams:
    def test_dot_streams(self, fko, ddot_src):
        k = fko.compile(ddot_src, TransformParams(sv=True, unroll=4))
        s = summarize(k.fn)
        assert s.elems_per_trip == 8       # 2 lanes x 4
        assert set(s.streams) == {"X", "Y"}
        for st in s.streams.values():
            assert st.reads and not st.writes
            assert st.elem_size == 8       # scalar units, not vector
            assert st.elems_per_trip == 8

    def test_swap_streams_read_write(self, fko):
        k = fko.compile(get_kernel("dswap").hil, TransformParams(sv=True))
        s = summarize(k.fn)
        for st in s.streams.values():
            assert st.reads and st.writes

    def test_copy_stream_directions(self, fko):
        k = fko.compile(get_kernel("scopy").hil, TransformParams(sv=True))
        s = summarize(k.fn)
        assert s.streams["X"].reads and not s.streams["X"].writes
        assert s.streams["Y"].writes and not s.streams["Y"].reads

    def test_nontemporal_flag(self, fko):
        k = fko.compile(get_kernel("dcopy").hil,
                        TransformParams(sv=True, wnt=True))
        s = summarize(k.fn)
        assert s.streams["Y"].nontemporal
        assert not s.streams["X"].nontemporal

    def test_prefetch_recorded(self, fko, ddot_src):
        k = fko.compile(ddot_src, TransformParams(
            sv=True, unroll=8,
            prefetch={"X": PrefetchParams(PrefetchHint.T0, 640)}))
        s = summarize(k.fn)
        assert s.streams["X"].prefetch_hint is PrefetchHint.T0
        assert s.streams["X"].prefetch_dist == 640
        # 8 trips x 2 lanes x 8B = 128B = 2 lines
        assert s.streams["X"].n_prefetches == 2
        assert s.streams["Y"].prefetch_hint is None

    def test_spill_traffic_not_a_stream(self, fko, ddot_src):
        k = fko.compile(ddot_src, TransformParams(sv=True, unroll=32, ae=16))
        assert k.applied["spilled"] > 0
        s = summarize(k.fn)
        assert set(s.streams) == {"X", "Y"}   # stack accesses excluded


class TestBodyWeights:
    def test_single_block_weight_one(self, fko, ddot_src):
        k = fko.compile(ddot_src, TransformParams(sv=True))
        s = summarize(k.fn)
        assert all(w == 1.0 for _, w in s.body)

    def test_iamax_rare_blocks_weighted_down(self, fko, iamax_src):
        k = fko.compile(iamax_src, TransformParams(sv=False, unroll=1))
        s = summarize(k.fn)
        weights = {w for _, w in s.body}
        assert 1.0 in weights
        assert any(w < 0.5 for w in weights)  # the NEWMAX path

    def test_cleanup_summarized(self, fko, ddot_src):
        k = fko.compile(ddot_src, TransformParams(sv=True, unroll=4))
        s = summarize(k.fn)
        assert s.cleanup  # the scalar remainder loop
        assert all(w == 1.0 for _, w in s.cleanup)

    def test_loopless_function(self, fko):
        k = fko.compile("ROUTINE f(X: ptr double);\nX += 1;\n")
        s = summarize(k.fn)
        assert not s.has_loop
        assert s.streams == {}


class TestBlockFetchTag:
    def test_override_set(self, fko):
        k = fko.compile(get_kernel("dcopy").hil,
                        TransformParams(sv=True, block_fetch=True))
        assert summarize(k.fn).write_batch_override == 16

    def test_override_absent_by_default(self, fko):
        k = fko.compile(get_kernel("dcopy").hil, TransformParams(sv=True))
        assert summarize(k.fn).write_batch_override is None
