"""Tests for the memory image and the functional interpreter."""

import numpy as np
import pytest

from repro.errors import SimulationFault
from repro.hil import compile_hil
from repro.ir import (Cond, DType, Function, IRBuilder, Imm, Instruction,
                      Mem, Opcode, Param, RegClass, VReg, sse)
from repro.machine import MemoryImage, run_function
from repro.machine.interp import Interpreter


class TestMemoryImage:
    def test_alignment(self):
        mem = MemoryImage()
        a = mem.allocate(np.zeros(10), "a")
        b = mem.allocate(np.zeros(10), "b")
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 80  # red zone

    def test_scalar_roundtrip(self):
        mem = MemoryImage()
        arr = np.zeros(4)
        base = mem.allocate(arr, "x")
        mem.store(base + 8, 3.25, DType.F64)
        assert arr[1] == 3.25
        assert mem.load(base + 8, DType.F64) == 3.25

    def test_f32_roundtrip(self):
        mem = MemoryImage()
        arr = np.zeros(4, dtype=np.float32)
        base = mem.allocate(arr, "x")
        mem.store(base + 4, 1.5, DType.F32)
        assert mem.load(base + 4, DType.F32) == np.float32(1.5)

    def test_vector_roundtrip(self):
        mem = MemoryImage()
        arr = np.zeros(8)
        base = mem.allocate(arr, "x")
        mem.store(base, np.array([1.0, 2.0]), DType.F64, lanes=2)
        got = mem.load(base, DType.F64, lanes=2)
        assert list(got) == [1.0, 2.0]

    def test_out_of_bounds_faults(self):
        mem = MemoryImage()
        base = mem.allocate(np.zeros(2), "x")
        with pytest.raises(SimulationFault, match="out of bounds"):
            mem.load(base + 16, DType.F64)

    def test_unmapped_address_faults(self):
        mem = MemoryImage()
        with pytest.raises(SimulationFault):
            mem.load(0x2, DType.F64)

    def test_unaligned_vector_faults(self):
        mem = MemoryImage()
        base = mem.allocate(np.zeros(8), "x")
        with pytest.raises(SimulationFault, match="unaligned"):
            mem.load(base + 8, DType.F64, lanes=2)

    def test_mutation_visible_in_caller_array(self):
        mem = MemoryImage()
        arr = np.zeros(4)
        base = mem.allocate(arr, "x")
        mem.store(base, -1.0, DType.F64)
        assert arr[0] == -1.0


class TestInterpreter:
    def test_missing_argument(self, ddot_src):
        fn = compile_hil(ddot_src)
        with pytest.raises(SimulationFault, match="missing"):
            run_function(fn, {"X": np.zeros(4)}, {"N": 4})

    def test_instruction_budget(self, ddot_src):
        fn = compile_hil(ddot_src)
        with pytest.raises(SimulationFault, match="budget"):
            run_function(fn, {"X": np.zeros(10), "Y": np.zeros(10)},
                         {"N": 10}, max_instructions=5)

    def test_undefined_register_read(self):
        fn = Function("f", [])
        b = IRBuilder(fn)
        b.new_block("entry")
        ghost = VReg("g", RegClass.GP, DType.I64)
        out = b.gp("o")
        # bypass verifier deliberately: run interpreter directly
        b.add(out, ghost, Imm(1))
        b.ret(out)
        with pytest.raises(SimulationFault, match="undefined register"):
            run_function(fn, {}, {})

    def test_vector_ops(self):
        fn = Function("f", [Param("X", DType.PTR, elem=DType.F32,
                                  reg=VReg("X", RegClass.GP, DType.PTR))])
        b = IRBuilder(fn)
        vt = sse(DType.F32)
        b.new_block("entry")
        v = b.vec("v", vt)
        w = b.vec("w", vt)
        s = b.fp("s", DType.F32)
        x = fn.params[0].reg
        b.load(v, Mem(x, vt))
        b.unop(Opcode.VABS, w, v)
        b.emit(Instruction(Opcode.VHADD, s, (w,)))
        b.ret(s)
        X = np.array([1.0, -2.0, 3.0, -4.0], dtype=np.float32)
        res = run_function(fn, {"X": X}, {})
        assert res.ret == 10.0

    def test_vhmax_and_vmask(self):
        fn = Function("f", [Param("X", DType.PTR, elem=DType.F64,
                                  reg=VReg("X", RegClass.GP, DType.PTR))])
        b = IRBuilder(fn)
        vt = sse(DType.F64)
        b.new_block("entry")
        v = b.vec("v", vt)
        z = b.vec("z", vt)
        m = b.vec("m", vt)
        g = b.gp("g")
        x = fn.params[0].reg
        b.load(v, Mem(x, vt))
        b.vzero(z)
        b.binop(Opcode.VCMPGT, m, v, z)
        b.unop(Opcode.VMASK, g, m)
        b.ret(g)
        res = run_function(fn, {"X": np.array([-1.0, 5.0])}, {})
        assert res.ret == 0b10  # only lane 1 positive

    def test_flags_comparisons(self):
        src = """ROUTINE cmp3(a: int, b: int) RETURNS int;
int r = 0;
IF (a < b) GOTO LT;
IF (a == b) GOTO EQ;
r = 3;
RETURN r;
LT:
r = 1;
RETURN r;
EQ:
r = 2;
RETURN r;
"""
        fn = compile_hil(src)
        assert run_function(fn, {}, {"a": 1, "b": 2}).ret == 1
        assert run_function(fn, {}, {"a": 2, "b": 2}).ret == 2
        assert run_function(fn, {}, {"a": 3, "b": 2}).ret == 3

    def test_prefetch_is_architectural_noop(self, ddot_src, rng):
        from repro.fko import FKO, TransformParams, PrefetchParams
        from repro.ir import PrefetchHint
        from repro.machine import pentium4e
        fko = FKO(pentium4e())
        plain = fko.compile(ddot_src, TransformParams(sv=True))
        pf = fko.compile(ddot_src, TransformParams(
            sv=True, prefetch={"X": PrefetchParams(PrefetchHint.NTA, 4096)}))
        X = rng.standard_normal(40)
        Y = rng.standard_normal(40)
        r1 = run_function(plain.fn, {"X": X.copy(), "Y": Y.copy()}, {"N": 40})
        r2 = run_function(pf.fn, {"X": X.copy(), "Y": Y.copy()}, {"N": 40})
        assert r1.ret == r2.ret

    def test_instruction_count_reported(self, ddot_src):
        fn = compile_hil(ddot_src)
        res = run_function(fn, {"X": np.ones(8), "Y": np.ones(8)}, {"N": 8})
        assert res.instructions_executed > 8 * 5
