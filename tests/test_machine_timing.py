"""Tests for the timing model: CPU bounds, memory simulation, and the
qualitative mechanisms the paper's evaluation relies on."""

import pytest

from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import PrefetchHint
from repro.kernels import get_kernel
from repro.machine import (Context, LoopTimer, get_machine, opteron,
                           pentium4e, summarize, time_kernel)
from repro.machine.timing import cpu_cycles_per_trip


def timed(machine, spec_name, params, context=Context.OUT_OF_CACHE,
          n=20000):
    spec = get_kernel(spec_name)
    k = FKO(machine).compile(spec.hil, params)
    summ = summarize(k.fn)
    return time_kernel(summ, machine, context, n)


class TestCpuBound:
    def test_dependence_chain_bound(self, p4e, ddot_src):
        """An un-expanded reduction is latency-bound; AE relieves it."""
        fko = FKO(p4e)
        k1 = fko.compile(ddot_src, TransformParams(sv=True, unroll=8, ae=1))
        k4 = fko.compile(ddot_src, TransformParams(sv=True, unroll=8, ae=4))
        c1 = cpu_cycles_per_trip(summarize(k1.fn).body, p4e)
        c4 = cpu_cycles_per_trip(summarize(k4.fn).body, p4e)
        assert c1 > c4 * 1.5

    def test_unroll_amortizes_overhead(self, p4e, ddot_src):
        fko = FKO(p4e)
        k1 = fko.compile(ddot_src, TransformParams(sv=True, unroll=1))
        k8 = fko.compile(ddot_src, TransformParams(sv=True, unroll=8, ae=4))
        s1, s8 = summarize(k1.fn), summarize(k8.fn)
        per_elem_1 = cpu_cycles_per_trip(s1.body, p4e) / s1.elems_per_trip
        per_elem_8 = cpu_cycles_per_trip(s8.body, p4e) / s8.elems_per_trip
        assert per_elem_8 < per_elem_1

    def test_decode_budget_throttles_huge_bodies(self, p4e, ddot_src):
        fko = FKO(p4e)
        k = fko.compile(ddot_src, TransformParams(sv=True, unroll=64, ae=4))
        s = summarize(k.fn)
        uops = sum(w for _, w in s.body)
        assert uops > p4e.decode_budget  # the body really is huge
        # and per-element cost is no better than a sane unroll
        k8 = fko.compile(ddot_src, TransformParams(sv=True, unroll=8, ae=4))
        s8 = summarize(k8.fn)
        big = cpu_cycles_per_trip(s.body, p4e) / s.elems_per_trip
        sane = cpu_cycles_per_trip(s8.body, p4e) / s8.elems_per_trip
        assert big >= sane * 0.95

    def test_vectorization_improves_cpu_bound(self, p4e, ddot_src):
        fko = FKO(p4e)
        ks = fko.compile(ddot_src, TransformParams(sv=False, unroll=4, ae=4))
        kv = fko.compile(ddot_src, TransformParams(sv=True, unroll=4, ae=4))
        ss, sv = summarize(ks.fn), summarize(kv.fn)
        scal = cpu_cycles_per_trip(ss.body, p4e) / ss.elems_per_trip
        vec = cpu_cycles_per_trip(sv.body, p4e) / sv.elems_per_trip
        assert vec < scal


class TestMemorySide:
    def test_prefetch_distance_hides_latency(self, p4e):
        base = TransformParams(sv=True, unroll=8)
        short = timed(p4e, "dasum", base.with_pf("X", PrefetchHint.NTA, 128))
        good = timed(p4e, "dasum", base.with_pf("X", PrefetchHint.NTA, 1024))
        assert good.cycles < short.cycles * 0.8

    def test_excessive_distance_wastes(self, opt):
        base = TransformParams(sv=True, unroll=8)
        good = timed(opt, "dasum", base.with_pf("X", PrefetchHint.NTA, 1024))
        silly = timed(opt, "dasum",
                      base.with_pf("X", PrefetchHint.NTA, 64 * 512))
        assert silly.cycles > good.cycles

    def test_wnt_helps_streaming_stores_on_p4e(self, p4e):
        nt = timed(p4e, "dcopy", TransformParams(sv=True, unroll=8, wnt=True))
        t = timed(p4e, "dcopy", TransformParams(sv=True, unroll=8, wnt=False))
        assert nt.cycles < t.cycles

    def test_wnt_hurts_read_write_streams_on_opteron(self, opt):
        nt = timed(opt, "dswap", TransformParams(sv=True, unroll=4, wnt=True))
        t = timed(opt, "dswap", TransformParams(sv=True, unroll=4, wnt=False))
        assert nt.cycles > t.cycles * 1.5

    def test_wnt_ok_for_write_only_stream_on_opteron(self, opt):
        nt = timed(opt, "dcopy", TransformParams(sv=True, unroll=4, wnt=True))
        t = timed(opt, "dcopy", TransformParams(sv=True, unroll=4, wnt=False))
        assert nt.cycles <= t.cycles * 1.02

    def test_wnt_bad_in_cache(self, p4e):
        nt = timed(p4e, "dcopy", TransformParams(sv=True, unroll=4, wnt=True),
                   context=Context.IN_L2, n=1024)
        t = timed(p4e, "dcopy", TransformParams(sv=True, unroll=4, wnt=False),
                  context=Context.IN_L2, n=1024)
        assert nt.cycles > t.cycles

    def test_in_cache_faster_than_out_of_cache(self, p4e):
        params = TransformParams(sv=True, unroll=8)
        ic = timed(p4e, "ddot", params, Context.IN_L2, 1024)
        oc = timed(p4e, "ddot", params, Context.OUT_OF_CACHE, 1024 * 8)
        per_elem_ic = ic.cycles / 1024
        per_elem_oc = oc.cycles / (1024 * 8)
        assert per_elem_ic < per_elem_oc

    def test_stats_populated(self, p4e):
        r = timed(p4e, "ddot", TransformParams(sv=True, unroll=4))
        assert r.stats.lines_processed > 0
        assert r.stats.bus_busy_cycles > 0

    def test_swap_more_bus_bound_than_asum(self, p4e):
        """Figure 5(b)'s diagnostic: the in-cache/out-of-cache speedup
        "provides a very good measure of how bus-bound an operation is"
        — swap (2 read + 2 write streams) gains far more from cache
        residency than asum (1 read stream, compute-limited)."""
        from repro.search import TuneConfig, tune_kernel
        def ratio(name):
            spec = get_kernel(name)
            oc = tune_kernel(spec, p4e, Context.OUT_OF_CACHE, 20000,
                             config=TuneConfig(run_tester=False))
            ic = tune_kernel(spec, p4e, Context.IN_L2, 1024,
                             config=TuneConfig(run_tester=False))
            return ic.mflops / oc.mflops
        assert ratio("dswap") > ratio("dasum")

    def test_mflops_conversion(self, p4e):
        r = timed(p4e, "ddot", TransformParams(sv=True), n=10000)
        mf = r.mflops(2 * 10000, p4e.freq_hz)
        assert mf > 0
        secs = r.seconds(p4e.freq_hz)
        assert mf == pytest.approx(2 * 10000 / secs / 1e6)


class TestMachineConfigs:
    def test_get_machine_aliases(self):
        assert get_machine("P4E").name == "P4E"
        assert get_machine("pentium4e").name == "P4E"
        assert get_machine("opteron").name == "Opteron"
        assert get_machine("K8").name == "Opteron"

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            get_machine("itanium")

    def test_paper_platform_parameters(self):
        p4e, opt = pentium4e(), opteron()
        assert p4e.freq_mhz == 2800 and opt.freq_mhz == 1600
        assert opt.mem_latency < p4e.mem_latency      # on-die controller
        assert opt.bus_turnaround < p4e.bus_turnaround
        assert PrefetchHint.W in opt.prefetch_hints   # 3DNow! prefetchw
        assert PrefetchHint.W not in p4e.prefetch_hints
        assert opt.wnt_read_write_penalty > 0
        assert p4e.wnt_read_write_penalty == 0

    def test_exec_classes_complete(self):
        for m in (pentium4e(), opteron()):
            for cls in ("fadd", "fmul", "vadd", "vmul", "ld", "st", "pref",
                        "mov", "iadd", "cmp", "br", "hadd", "vcmp"):
                ec = m.exec_class(cls)
                assert ec.lat >= 1 and ec.rthru > 0 and ec.uops >= 1
