"""Tests for the live-metrics + convergence-telemetry layer.

Covers the PR's contract surface:

* the metrics registry: labeled counters/gauges/histograms, inert when
  disabled (same contract as the obs collector), reset semantics, and
  a valid Prometheus text exposition;
* the instrumented engine/daemon: a tuning run populates the expected
  series, and metrics are provably non-perturbing — history digests at
  jobs=1 and jobs=4 are bit-identical with the registry on or off;
* tiling observability: an observed Level-3 compile records
  ``tile-discover``/``tile-apply`` spans with ``tile.*`` detail, the
  TILE report section golden-renders, and the Perfetto export of a
  tiled trace stays balanced;
* streaming traces: ``TraceStream`` yields what ``read_trace``
  materializes, counts malformed lines, and is multi-pass safe;
* anytime curves: per-(job, strategy) collection from curve events and
  derived eval steps, cross-job aggregation, CLI artifacts;
* ``repro perf diff``: metric classification, deterministic gating,
  and the CLI exiting nonzero on an injected regression;
* ``GET /v1/metrics``: Prometheus text that parses, with nonzero
  counters after a served tune.
"""

import dataclasses
import hashlib
import json
import pathlib
import urllib.request

import pytest

from repro import cli, obs
from repro.fko import FKO
from repro.kernels import get_kernel
from repro.machine import Context
from repro.obs import (Collector, aggregate_curves, collect_curves,
                       curves_document, diff_metrics, export_perfetto,
                       load_artifact, render_curves_markdown, render_diff,
                       render_report)
from repro.obs import metrics as m
from repro.obs.perfdiff import classify_metric, flatten_numeric
from repro.search import (TraceStream, TuneConfig, TuningSession,
                          read_trace, summarize_trace)

GOLDEN = pathlib.Path(__file__).parent / "golden"
TILE_FIXTURE = GOLDEN / "tile_trace_fixture.jsonl"
N = 4000
EVALS = 24


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts and ends with the process registry off/empty
    (the registry is process-global by design)."""
    m.disable()
    m.reset()
    yield
    m.disable()
    m.reset()


def _config(**kw):
    kw.setdefault("run_tester", False)
    kw.setdefault("max_evals", EVALS)
    return TuneConfig(**kw)


def _get(entries, **labels):
    """The snapshot entry of one labeled series."""
    for e in entries:
        if e["labels"] == labels:
            return e
    raise AssertionError(f"no series with labels {labels} in {entries}")


# ---------------------------------------------------------------------------
# the registry core

class TestMetricsRegistry:
    def test_inert_when_disabled(self):
        assert not m.enabled()
        m.inc("repro_evaluations_total", status="ok")
        m.set_gauge("repro_queue_depth", 9)
        m.observe("repro_eval_wall_seconds", 0.5)
        snap = m.snapshot()
        assert not snap["counters"] and not snap["gauges"] \
            and not snap["histograms"]

    def test_counters_accumulate_per_label_set(self):
        m.enable()
        m.inc("repro_evaluations_total", status="ok")
        m.inc("repro_evaluations_total", 2, status="ok")
        m.inc("repro_evaluations_total", status="timeout")
        series = m.snapshot()["counters"]["repro_evaluations_total"]
        assert _get(series, status="ok")["value"] == 3
        assert _get(series, status="timeout")["value"] == 1

    def test_gauge_overwrites(self):
        m.enable()
        m.set_gauge("repro_queue_depth", 4)
        m.set_gauge("repro_queue_depth", 1)
        series = m.snapshot()["gauges"]["repro_queue_depth"]
        assert _get(series)["value"] == 1

    def test_histogram_sum_count_and_cumulative_buckets(self):
        m.enable()
        for v in (0.0001, 0.01, 5.0):
            m.observe("repro_eval_wall_seconds", v)
        text = m.render_prometheus()
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_eval_wall_seconds")]
        count = next(l for l in lines
                     if l.startswith("repro_eval_wall_seconds_count"))
        total = next(l for l in lines
                     if l.startswith("repro_eval_wall_seconds_sum"))
        assert float(count.rsplit(" ", 1)[1]) == 3
        assert float(total.rsplit(" ", 1)[1]) == pytest.approx(5.0101)
        buckets = [float(l.rsplit(" ", 1)[1]) for l in lines
                   if "_bucket" in l]
        assert buckets == sorted(buckets)          # cumulative
        assert buckets[-1] == 3                    # le="+Inf" sees all
        assert any('le="+Inf"' in l for l in lines)
        # the snapshot view agrees
        hist = _get(m.snapshot()["histograms"]["repro_eval_wall_seconds"])
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(5.0101)
        assert hist["buckets"][-1] == {"le": "+Inf", "n": 3}

    def test_prometheus_text_shape(self):
        m.enable()
        m.inc("repro_requests_total", how="new")
        text = m.render_prometheus()
        assert "# HELP repro_requests_total" in text
        assert "# TYPE repro_requests_total counter" in text
        # integral values render without a trailing .0
        assert 'repro_requests_total{how="new"} 1\n' in text

    def test_label_value_escaping(self):
        m.enable()
        m.inc("repro_client_requests_total", client='a"b\\c\nd')
        text = m.render_prometheus()
        assert 'client="a\\"b\\\\c\\nd"' in text

    def test_reset_clears_series_keeps_registration(self):
        m.enable()
        m.inc("repro_compiles_total")
        m.reset()
        assert m.enabled()   # reset does not flip the enable switch
        assert "repro_compiles_total" not in m.snapshot()["counters"]
        # the described help text survives a reset
        m.inc("repro_compiles_total")
        assert "# HELP repro_compiles_total Daemon one-shot" \
            in m.render_prometheus()

    def test_snapshot_is_json_serializable(self):
        m.enable()
        m.observe("repro_batch_group_size", 4)
        m.set_gauge("repro_evals_per_sec", 123.4, scope="batch")
        json.dumps(m.snapshot())


# ---------------------------------------------------------------------------
# engine instrumentation

class TestEngineMetrics:
    def test_tune_populates_series(self):
        m.enable()
        with TuningSession(_config()) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        snap = m.snapshot()
        evals = _get(snap["counters"]["repro_evaluations_total"],
                     status="ok")
        assert evals["value"] > 0
        assert snap["counters"]["repro_eval_path_total"]
        wall = _get(snap["histograms"]["repro_eval_wall_seconds"])
        assert wall["count"] > 0 and wall["sum"] > 0

    def test_batch_run_sets_throughput_gauge(self):
        from repro.search.engine import TuningJob
        m.enable()
        with TuningSession(_config()) as s:
            s.run([TuningJob("ddot", "p4e", Context.OUT_OF_CACHE, N)])
        snap = m.snapshot()
        assert _get(snap["gauges"]["repro_evals_per_sec"],
                    scope="batch")["value"] > 0

    def test_batched_tune_populates_group_series(self):
        m.enable()
        with TuningSession(_config(batch_size=8)) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        snap = m.snapshot()
        assert _get(snap["counters"]["repro_batch_groups_total"])["value"] > 0
        assert _get(snap["histograms"]["repro_batch_group_size"])["count"] > 0

    def test_cache_hits_counted(self, tmp_path):
        m.enable()
        cache = str(tmp_path / "cache")
        with TuningSession(_config(cache_dir=cache)) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        with TuningSession(_config(cache_dir=cache)) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        snap = m.snapshot()
        assert _get(snap["counters"]["repro_eval_cache_hits_total"]
                    )["value"] > 0


# ---------------------------------------------------------------------------
# metrics must not perturb anything, serial or fanned out

def _digest(path):
    """History digest of a trace: every event minus wall-clock noise."""
    h = hashlib.sha256()
    for e in read_trace(str(path)):
        slim = {k: v for k, v in e.items() if k not in ("t", "wall")}
        h.update(json.dumps(slim, sort_keys=True).encode())
    return h.hexdigest()


class TestMetricsNonPerturbation:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_history_digest_identical_on_off(self, tmp_path, jobs):
        off, on = tmp_path / "off.jsonl", tmp_path / "on.jsonl"
        with TuningSession(_config(jobs=jobs, trace=str(off))) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        m.enable()
        with TuningSession(_config(jobs=jobs, trace=str(on))) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        m.disable()
        assert _digest(off) == _digest(on)

    def test_search_results_identical_on_off(self):
        with TuningSession(_config()) as s:
            off = s.tune("dasum", "p4e", Context.OUT_OF_CACHE, N)
        m.enable()
        with TuningSession(_config()) as s:
            on = s.tune("dasum", "p4e", Context.OUT_OF_CACHE, N)
        assert on.params.key() == off.params.key()
        assert on.search.best_cycles == off.search.best_cycles
        assert on.search.history == off.search.history


# ---------------------------------------------------------------------------
# curve events (schema v2 addition)

class TestCurveEvents:
    def test_one_curve_event_per_round(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TuningSession(_config(trace=str(path))) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        events = read_trace(str(path))
        curves = [e for e in events if e["event"] == "curve"]
        rounds = [e for e in events if e["event"] == "round"]
        assert curves and len(curves) == len(rounds)
        for c in curves:
            assert c["strategy"] == "line" and c["seed"] == 0
            assert isinstance(c["improved"], bool)
            assert c["best_cycles"] > 0
        # best-so-far is monotonically non-increasing
        bests = [c["best_cycles"] for c in curves]
        assert bests == sorted(bests, reverse=True)
        # evaluations charged matches the searcher's accounting
        assert curves[-1]["evaluations"] == rounds[-1]["evaluations"]


# ---------------------------------------------------------------------------
# tiling observability

class TestTilingObservability:
    def _tiled_params(self, fko, hil):
        return dataclasses.replace(fko.defaults(hil),
                                   ext={"tile:i": 16, "tile:k": 8})

    def test_observed_compile_records_tile_spans(self, p4e):
        fko = FKO(p4e)
        spec = get_kernel("dgemm")
        col = Collector()
        with obs.use(col):
            fko.compile(spec.hil, self._tiled_params(fko, spec.hil))
        names = [p["pass"] for p in col.passes]
        assert "tile-discover" in names and "tile-apply" in names
        disc = next(p for p in col.passes if p["pass"] == "tile-discover")
        assert disc["applied"]
        assert disc["detail"]["tile.nest_loops"] == 3
        assert disc["detail"]["tile.nest_arrays"] == 3
        appl = next(p for p in col.passes if p["pass"] == "tile-apply")
        assert appl["detail"]["tile.loops_tiled"] == 2
        assert appl["detail"]["tile.lines_delta"] > 0

    def test_observed_tiling_is_non_perturbing(self, p4e):
        from repro.ir import format_function
        fko = FKO(p4e)
        spec = get_kernel("dgemm")
        params = self._tiled_params(fko, spec.hil)
        plain = fko.compile(spec.hil, params)
        with obs.use(Collector()):
            observed = fko.compile(spec.hil, params)
        assert format_function(plain.fn) == format_function(observed.fn)

    def test_metrics_mode_times_cold_tiling(self):
        from repro.hil.tiling import nest_info, tiled_source
        spec = get_kernel("dgemm")
        # a never-seen source string forces the memo tables cold
        src = spec.hil + "\n// metrics-cold-probe\n"
        m.enable()
        nest_info(src)
        tiled_source(src, {"i": 16})
        hists = m.snapshot()["histograms"]["repro_tile_wall_seconds"]
        assert _get(hists, stage="discover")["count"] == 1
        assert _get(hists, stage="apply")["count"] == 1
        # warm lookups stay memoized: counts do not grow
        nest_info(src)
        tiled_source(src, {"i": 16})
        again = m.snapshot()["histograms"]["repro_tile_wall_seconds"]
        assert _get(again, stage="discover")["count"] == 1
        assert _get(again, stage="apply")["count"] == 1

    def test_tile_report_golden(self):
        rendered = render_report(read_trace(str(TILE_FIXTURE)),
                                 title="tile fixture report")
        assert rendered == (GOLDEN / "tile_report_golden.md").read_text()

    def test_untiled_trace_has_no_tile_section(self):
        fixture = GOLDEN / "obs_trace_fixture.jsonl"
        text = render_report(read_trace(str(fixture)))
        assert "TILE phase" not in text

    def test_perfetto_export_of_tiled_trace_balanced(self):
        from .test_obs import _check_spans_balanced
        doc = export_perfetto(read_trace(str(TILE_FIXTURE)))
        json.dumps(doc)
        _check_spans_balanced(doc)
        names = {e["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "B"}
        assert {"tile-discover", "tile-apply"} <= names

    def test_real_tiled_tune_exports_cleanly(self, tmp_path):
        from .test_obs import _check_spans_balanced
        path = tmp_path / "t.jsonl"
        with TuningSession(_config(max_evals=60, observe=True,
                                   trace=str(path))) as s:
            s.tune("dgemm", "p4e", Context.OUT_OF_CACHE, 96)
        events = read_trace(str(path))
        passes = {e["pass"] for e in events if e["event"] == "pass"}
        assert {"tile-discover", "tile-apply"} <= passes
        doc = export_perfetto(events)
        json.dumps(doc)
        _check_spans_balanced(doc)
        assert "TILE phase" in render_report(events)


# ---------------------------------------------------------------------------
# streaming trace reads

class TestTraceStream:
    def test_stream_yields_what_read_trace_materializes(self):
        stream = list(TraceStream(str(TILE_FIXTURE)))
        assert stream == list(read_trace(str(TILE_FIXTURE)))

    def test_malformed_counted_and_multi_pass_safe(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"t": 1.0, "event": "eval"}\n'
                        "{broken\n"
                        '{"t": 2.0, "event": "batch-end"}\n')
        stream = TraceStream(str(path))
        assert len(list(stream)) == 2
        assert stream.malformed == 1
        # a second pass re-reads the file and does NOT double the count
        assert len(list(stream)) == 2
        assert stream.malformed == 1

    def test_summarize_streams_without_materializing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TuningSession(_config(trace=str(path))) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        streamed = summarize_trace(TraceStream(str(path)))
        materialized = summarize_trace(read_trace(str(path)))
        assert streamed == materialized

    def test_perf_diff_accepts_trace_artifacts(self):
        summary = load_artifact(str(TILE_FIXTURE))
        assert summary["evaluations"] == 3
        report = diff_metrics(summary, summary)
        assert not report["regressions"]


# ---------------------------------------------------------------------------
# anytime curves

class TestCurves:
    def test_collect_from_fixture(self):
        curves = collect_curves(TraceStream(str(TILE_FIXTURE)))
        [(key, entry)] = curves.items()
        assert key == "dgemm:p4e:out-of-cache:256@line"
        assert entry["evaluations"] == 3
        assert entry["best_cycles"] == 7200000.0
        assert entry["tells"] == [[1, 9600000.0], [2, 7200000.0],
                                  [3, 7200000.0]]
        assert entry["points"] == [[1, 9600000.0], [2, 7200000.0]]

    def test_repeat_pairs_get_dedupe_suffix(self):
        events = []
        for _ in range(2):
            events += [{"event": "job-start", "job": "j", "strategy": "line",
                        "seed": 0},
                       {"event": "eval", "job": "j", "cycles": 10.0},
                       {"event": "job-end", "job": "j"}]
        curves = collect_curves(events)
        assert list(curves) == ["j@line", "j@line#2"]

    def test_aggregate_ratio_of_best_known(self):
        events = [
            {"event": "job-start", "job": "j", "strategy": "a", "seed": 0},
            {"event": "eval", "job": "j", "cycles": 200.0},
            {"event": "eval", "job": "j", "cycles": 100.0},
            {"event": "job-end", "job": "j"},
            {"event": "job-start", "job": "j", "strategy": "b", "seed": 0},
            {"event": "eval", "job": "j", "cycles": 400.0},
            {"event": "eval", "job": "j", "cycles": 400.0},
            {"event": "job-end", "job": "j"},
        ]
        agg = aggregate_curves(collect_curves(events))
        assert agg["jobs"] == 1
        assert agg["checkpoints"][-1] == 2
        # best known is 100: strategy a converges to 1.0, b sits at 0.25
        assert agg["strategies"]["a"]["ratio_of_best"][2] == 1.0
        assert agg["strategies"]["b"]["ratio_of_best"][2] == 0.25

    def test_markdown_and_document(self):
        curves = collect_curves(TraceStream(str(TILE_FIXTURE)))
        text = render_curves_markdown(curves)
        assert "| Strategy |" in text
        assert "dgemm:p4e:out-of-cache:256@line" in text
        doc = curves_document(curves)
        assert doc["version"] == 1
        json.dumps(doc)

    def test_cli_curves_writes_artifacts(self, tmp_path, capsys):
        js, md = tmp_path / "c.json", tmp_path / "c.md"
        rc = cli.main(["curves", str(TILE_FIXTURE),
                       "--json", str(js), "-o", str(md)])
        assert rc == 0
        doc = json.loads(js.read_text())
        assert doc["aggregate"]["strategies"]["line"]
        assert "Anytime performance" in md.read_text()

    def test_cli_curves_empty_trace_reports_no_data_and_exits_zero(
            self, tmp_path, capsys):
        # an empty (or curve-event-free) trace is a report, not a
        # crash: "no data" on stdout and a zero exit, so trace-cleanup
        # scripts and CI globs over partial runs never false-fail
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert cli.main(["curves", str(path)]) == 0
        assert "no convergence data" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# perf diff

class TestPerfDiff:
    def test_flatten_skips_booleans_indexes_lists(self):
        flat = flatten_numeric({"a": {"b": 2}, "ok": True,
                                "xs": [1.5, {"c": 3}]})
        assert flat == {"a.b": 2.0, "xs.0": 1.5, "xs.1.c": 3.0}

    def test_classification_longest_fragment_wins(self):
        assert classify_metric("summary.cache_hit_rate") == "higher"
        assert classify_metric("grid.x.best_cycles") == "lower"
        assert classify_metric("serial_evals_per_sec") == "higher"
        assert classify_metric("budget") is None

    def test_self_diff_is_clean(self):
        doc = {"best_cycles": 100.0, "wall_s": 2.0}
        report = diff_metrics(doc, doc)
        assert not report["regressions"]
        assert all(r["delta"] == 0 for r in report["rows"])

    def test_gated_regression_detected(self):
        old = {"grid": {"p": {"best_cycles": 1000.0}}, "wall_s": 5.0}
        new = {"grid": {"p": {"best_cycles": 1100.0}}, "wall_s": 50.0}
        report = diff_metrics(old, new)
        [reg] = report["regressions"]
        assert reg["key"] == "grid.p.best_cycles"
        # wall moved 10x but wall is runner noise — reported, not gated
        assert all(r["key"] != "wall_s" for r in report["regressions"])
        assert "REGRESSIONS" in render_diff(report)

    def test_improvement_and_threshold_pass(self):
        old = {"best_cycles": 1000.0, "mismatches": 0}
        new = {"best_cycles": 990.0, "mismatches": 0}
        assert not diff_metrics(old, new)["regressions"]
        # a worsening under the threshold also passes
        new = {"best_cycles": 1030.0, "mismatches": 0}
        assert not diff_metrics(old, new, threshold=0.05)["regressions"]

    def test_zero_floor_regresses_on_any_worsening(self):
        report = diff_metrics({"mismatches": 0}, {"mismatches": 1})
        assert report["regressions"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"grid": {"p": {"best_cycles": 100.0}}}))
        new.write_text(json.dumps({"grid": {"p": {"best_cycles": 100.0}}}))
        assert cli.main(["perf", "diff", str(old), str(new)]) == 0
        new.write_text(json.dumps({"grid": {"p": {"best_cycles": 120.0}}}))
        js = tmp_path / "report.json"
        assert cli.main(["perf", "diff", str(old), str(new),
                         "--json", str(js)]) == 1
        assert json.loads(js.read_text())["regressions"]


# ---------------------------------------------------------------------------
# the daemon endpoint

class TestServeMetrics:
    def test_v1_metrics_prometheus_and_json(self):
        from repro.client import ServeClient
        from repro.service import TuneRequest
        from repro.service.daemon import start_server
        with start_server(port=0, config=_config()) as handle:
            client = ServeClient(handle.url)
            ticket = client.submit(TuneRequest(
                kernel="ddot", machine="p4e", context="out-of-cache",
                n=N, budget=EVALS, test=False))
            client.wait(ticket["job_id"], timeout=120)
            text = urllib.request.urlopen(
                handle.url + "/v1/metrics").read().decode()
            snap = json.loads(urllib.request.urlopen(
                handle.url + "/v1/metrics?format=json").read().decode())
        families = {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                families[name] = kind
        assert families["repro_evaluations_total"] == "counter"
        assert families["repro_eval_wall_seconds"] == "histogram"
        assert families["repro_queue_depth"] == "gauge"
        for line in text.splitlines():   # every sample line parses
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part.startswith("repro_")
        assert 'repro_requests_total{how="new"} 1' in text
        assert _get(snap["counters"]["repro_jobs_completed_total"]
                    )["value"] == 1
        assert _get(snap["counters"]["repro_evaluations_total"],
                    status="ok")["value"] > 0

    def test_metrics_flag_off_keeps_registry_dark(self):
        from repro.service.daemon import start_server
        with start_server(port=0, config=_config(),
                          metrics=False) as handle:
            assert not m.enabled()
            text = urllib.request.urlopen(
                handle.url + "/v1/metrics").read().decode()
        # still a valid (empty) exposition: no samples recorded
        assert not [l for l in text.splitlines()
                    if l and not l.startswith("#")]

    def test_cli_metrics_command(self, capsys):
        from repro.client import ServeClient
        from repro.service import TuneRequest
        from repro.service.daemon import start_server
        with start_server(port=0, config=_config()) as handle:
            client = ServeClient(handle.url)
            ticket = client.submit(TuneRequest(
                kernel="dscal", machine="p4e", context="out-of-cache",
                n=N, budget=EVALS, test=False))
            client.wait(ticket["job_id"], timeout=120)
            rc = cli.main(["metrics", "--serve-url", handle.url])
            assert rc == 0
            out = capsys.readouterr().out
            assert "# TYPE repro_requests_total counter" in out
            rc = cli.main(["metrics", "--serve-url", handle.url, "--json"])
            assert rc == 0
            json.loads(capsys.readouterr().out)

    def test_cli_metrics_unreachable_errors(self):
        with pytest.raises(SystemExit):
            cli.main(["metrics", "--serve-url", "http://127.0.0.1:9"])
