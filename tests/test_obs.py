"""Tests for the observability subsystem (repro.obs + trace schema v2).

Covers the PR's contract surface:

* the collector: inert when disabled, scoped by ``use()``, pass spans
  record wall/applied/IR deltas, counters accumulate;
* the instrumented pipeline: every transform pass shows up with sane
  records, and observation is provably non-perturbing (identical
  cycles, identical emitted IR, identical search decisions, identical
  cache keys);
* trace schema v2: ``pass``/``attribution`` events appear only with
  ``observe=True``, jobs=4 matches jobs=1 bit-identically (modulo
  wall-clock fields), the sanitizer handles nested non-finite floats,
  the writer is a context manager, malformed lines are counted;
* the consumers: Perfetto export is valid strict JSON with matched,
  properly nested B/E pairs, and ``repro report`` golden-renders the
  fixture trace.
"""

import json
import math
import pathlib

import pytest

from repro import obs
from repro.fko import FKO
from repro.ir import format_function
from repro.kernels import get_kernel
from repro.machine import Context
from repro.obs import Collector, export_perfetto, render_report
from repro.search import (TuneConfig, TuningJob, TuningSession,
                          evaluate_params, read_trace, render_trace_summary,
                          summarize_trace)
from repro.search.trace import TRACE_VERSION, TraceWriter
from repro.timing.timer import Timer
from repro import cli

GOLDEN = pathlib.Path(__file__).parent / "golden"
FIXTURE = GOLDEN / "obs_trace_fixture.jsonl"
N = 4000
EVALS = 24

PIPELINE_PASSES = {"cfg", "sv", "ur", "lc", "ae", "pf", "wnt",
                   "copy-prop", "peephole", "regalloc"}


def _config(**kw):
    kw.setdefault("run_tester", False)
    kw.setdefault("max_evals", EVALS)
    return TuneConfig(**kw)


def _tools(machine):
    return FKO(machine), Timer(machine, Context.OUT_OF_CACHE, N)


# ---------------------------------------------------------------------------
# the collector core

class TestCollector:
    def test_disabled_by_default(self):
        assert obs.active() is None
        assert not obs.enabled()
        obs.count("anything", 3)   # must be a silent no-op

    def test_use_installs_and_restores(self):
        col = Collector()
        with obs.use(col):
            assert obs.active() is col
            obs.count("x", 2)
            obs.count("x")
        assert obs.active() is None
        assert col.counters["x"] == 3

    def test_use_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.use(Collector()):
                raise RuntimeError("boom")
        assert obs.active() is None

    def test_nested_use_restores_outer(self):
        outer, inner = Collector(), Collector()
        with obs.use(outer):
            with obs.use(inner):
                obs.count("k")
            assert obs.active() is outer
        assert inner.counters["k"] == 1
        assert "k" not in outer.counters

    def test_snapshot_shape(self):
        col = Collector()
        col.count("a", 2)
        col.gauge("g", 1.5)
        snap = col.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["metrics"] == {"g": 1.5}
        assert snap["passes"] == []


# ---------------------------------------------------------------------------
# the instrumented pipeline

class TestPipelineSpans:
    @pytest.fixture(scope="class")
    def observed(self, p4e):
        fko = FKO(p4e)
        spec = get_kernel("ddot")
        col = Collector()
        with obs.use(col):
            compiled = fko.compile(spec.hil, fko.defaults(spec.hil))
        return col, compiled

    def test_every_record_is_a_known_pass(self, observed):
        col, _ = observed
        assert col.passes
        assert {p["pass"] for p in col.passes} <= PIPELINE_PASSES

    def test_records_carry_spans_and_ir_deltas(self, observed):
        col, _ = observed
        for p in col.passes:
            assert p["wall"] >= 0.0
            assert isinstance(p["applied"], bool)
            for k in ("instrs", "blocks", "vregs",
                      "d_instrs", "d_blocks", "d_vregs"):
                assert isinstance(p[k], int)
            assert p["instrs"] > 0 and p["blocks"] > 0

    def test_regalloc_reports_allocation_detail(self, observed):
        col, _ = observed
        ra = [p for p in col.passes if p["pass"] == "regalloc"]
        assert len(ra) == 1
        assert ra[0]["detail"]["ra.allocated"] > 0
        # zero-valued counters are elided from the delta; spill counts
        # therefore appear exactly when the allocator spilled
        assert ra[0]["detail"].get("ra.spilled", 0) >= 0

    def test_unroll_reports_replicated_trips(self, p4e):
        import dataclasses
        fko = FKO(p4e)
        spec = get_kernel("ddot")
        params = dataclasses.replace(fko.defaults(spec.hil), unroll=4)
        col = Collector()
        with obs.use(col):
            fko.compile(spec.hil, params)
        ur = [p for p in col.passes if p["pass"] == "ur"]
        assert ur and ur[0]["applied"]
        assert ur[0]["detail"]["ur.replicated_trips"] == 3
        assert ur[0]["d_instrs"] > 0   # unrolling grows the body


# ---------------------------------------------------------------------------
# observation must not perturb anything

class TestNonPerturbation:
    def test_compiled_ir_is_identical(self, p4e):
        fko = FKO(p4e)
        spec = get_kernel("ddot")
        params = fko.defaults(spec.hil)
        plain = fko.compile(spec.hil, params)
        with obs.use(Collector()):
            observed = fko.compile(spec.hil, params)
        assert format_function(plain.fn) == format_function(observed.fn)

    def test_evaluated_cycles_are_identical(self, p4e):
        fko, timer = _tools(p4e)
        spec = get_kernel("ddot")
        params = fko.defaults(spec.hil)
        c_off, s_off, _ = evaluate_params(fko, timer, spec.hil, params,
                                          spec.flops(N), "t|")
        c_on, s_on, meta = evaluate_params(fko, timer, spec.hil, params,
                                           spec.flops(N), "t|",
                                           observe=True)
        assert (c_off, s_off) == (c_on, s_on)
        assert meta["passes"] and meta["attribution"]

    def test_attribution_decomposes_recorded_cycles(self, p4e):
        fko, timer = _tools(p4e)
        spec = get_kernel("ddot")
        _, _, meta = evaluate_params(fko, timer, spec.hil,
                                     fko.defaults(spec.hil),
                                     spec.flops(N), "t|", observe=True)
        att = meta["attribution"]
        assert att["total"] > 0
        assert att["compute"] + att["memory_stall"] + att["other"] \
            == pytest.approx(att["total"])
        assert att["prefetch_waste"] >= 0

    def test_search_decisions_are_identical(self):
        with TuningSession(_config()) as s:
            off = s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        with TuningSession(_config(observe=True)) as s:
            on = s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        assert on.params.key() == off.params.key()
        assert on.search.best_cycles == off.search.best_cycles
        assert on.search.history == off.search.history

    def test_cache_keys_are_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        with TuningSession(_config(observe=True, cache_dir=cache)) as s:
            s.tune("dasum", "p4e", Context.OUT_OF_CACHE, N)
        with TuningSession(_config(observe=False, cache_dir=cache)) as s:
            s.tune("dasum", "p4e", Context.OUT_OF_CACHE, N)
            assert s.stats.evaluations == 0   # warm rerun: every key hits
            assert s.stats.cache_hits > 0


# ---------------------------------------------------------------------------
# trace schema v2

def _strip_walls(events):
    """Drop wall-clock fields (the only nondeterminism between runs)."""
    return [json.dumps({k: v for k, v in e.items()
                        if k not in ("t", "wall")}, sort_keys=True)
            for e in events]


class TestTraceV2:
    def test_version_bumped(self):
        assert TRACE_VERSION == 2

    def test_observe_adds_v2_events_in_order(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TuningSession(_config(observe=True, trace=str(path))) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        events = read_trace(str(path))
        kinds = [e["event"] for e in events]
        assert "pass" in kinds and "attribution" in kinds
        # every eval is preceded by its pass block and followed by its
        # attribution, params all agreeing
        for i, e in enumerate(events):
            if e["event"] == "eval":
                assert events[i - 1]["event"] == "pass"
                assert events[i - 1]["params"] == e["params"]
                assert events[i + 1]["event"] == "attribution"
                assert events[i + 1]["params"] == e["params"]

    def test_no_observe_means_no_v2_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TuningSession(_config(trace=str(path))) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        kinds = {e["event"] for e in read_trace(str(path))}
        assert not kinds & {"pass", "attribution"}

    def test_candidate_fanout_stream_matches_serial(self, tmp_path):
        serial, par = tmp_path / "s.jsonl", tmp_path / "p.jsonl"
        with TuningSession(_config(observe=True, trace=str(serial))) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        with TuningSession(_config(observe=True, jobs=4,
                                   trace=str(par))) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        assert _strip_walls(read_trace(str(serial))) \
            == _strip_walls(read_trace(str(par)))

    def test_job_fanout_subsequences_match_serial(self, tmp_path):
        jobs = [TuningJob(k, "p4e", Context.OUT_OF_CACHE, N,
                          max_evals=EVALS) for k in ("ddot", "dasum")]
        serial, par = tmp_path / "s.jsonl", tmp_path / "p.jsonl"
        with TuningSession(_config(observe=True, trace=str(serial))) as s:
            assert not s.run(jobs).errors
        with TuningSession(_config(observe=True, jobs=4,
                                   trace=str(par))) as s:
            assert not s.run(jobs).errors

        def per_job(path):
            out = {}
            for e in read_trace(str(path)):
                if e.get("job"):
                    out.setdefault(e["job"], []).append(e)
            return {k: _strip_walls(v) for k, v in out.items()}

        assert per_job(serial) == per_job(par)

    def test_sanitizer_handles_nested_nonfinite(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(str(path)) as w:
            w.emit("eval", cycles=float("inf"),
                   detail={"a": float("nan"),
                           "deep": [1.0, float("-inf"), {"b": math.nan}]},
                   ok=1.5)
        [ev] = read_trace(str(path))
        assert ev["cycles"] is None
        assert ev["detail"]["a"] is None
        assert ev["detail"]["deep"] == [1.0, None, {"b": None}]
        assert ev["ok"] == 1.5

    def test_writer_context_manager_closes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(str(path)) as w:
            w.emit("x")
            assert w._fh is not None
        assert w._fh is None
        with pytest.raises(RuntimeError):
            with TraceWriter(str(path)) as w:
                raise RuntimeError("boom")
        assert w._fh is None   # closed on the error path too

    def test_session_closes_trace_when_batch_dies(self, tmp_path, monkeypatch):
        path = tmp_path / "t.jsonl"
        session = TuningSession(_config(trace=str(path)))
        monkeypatch.setattr(session, "_load_checkpoint",
                            lambda: (_ for _ in ()).throw(RuntimeError("x")))
        with pytest.raises(RuntimeError):
            session.run([TuningJob("ddot", "p4e",
                                   Context.OUT_OF_CACHE, N)])
        assert session._trace._fh is None

    def test_malformed_lines_counted_and_reported(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"t": 1.0, "event": "eval", "wall": 0.1}\n'
                        "{broken\n"
                        "also broken\n"
                        '{"t": 2.0, "event": "batch-end", "wall": 1.0}\n')
        events = read_trace(str(path))
        assert len(events) == 2
        assert events.malformed == 2
        summary = summarize_trace(events)
        assert summary["malformed_lines"] == 2
        assert "2 malformed line(s)" in render_trace_summary(summary)

    def test_clean_trace_reports_zero_malformed(self):
        events = read_trace(str(FIXTURE))
        assert events.malformed == 0
        assert summarize_trace(events)["malformed_lines"] == 0


# ---------------------------------------------------------------------------
# consumer 1: Perfetto / Chrome trace-event export

def _check_spans_balanced(doc):
    """Every B has a matching same-name E on its pid/tid, properly
    nested, timestamps monotonic within each stack."""
    stacks = {}
    for e in doc["traceEvents"]:
        key = (e.get("pid"), e.get("tid"))
        if e.get("ph") == "B":
            stacks.setdefault(key, []).append(e)
        elif e.get("ph") == "E":
            assert stacks.get(key), f"E without open B on {key}"
            opener = stacks[key].pop()
            assert opener["name"] == e["name"]
            assert e["ts"] >= opener["ts"]
    assert not any(stacks.values()), "unclosed B spans"


class TestPerfetto:
    @pytest.fixture(scope="class")
    def doc(self):
        return export_perfetto(read_trace(str(FIXTURE)))

    def test_is_valid_strict_json(self, doc):
        text = json.dumps(doc)          # would raise on inf/nan leftovers
        assert json.loads(text) == doc
        assert doc["displayTimeUnit"] == "ms"

    def test_b_e_pairs_match_and_nest(self, doc):
        _check_spans_balanced(doc)

    def test_tracks_named_per_job(self, doc):
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "engine" in names
        assert "ddot:p4e:out-of-cache:80000" in names

    def test_passes_nest_inside_their_eval(self, doc):
        evs = doc["traceEvents"]
        evals = [(e["ts"], i) for i, e in enumerate(evs)
                 if e.get("ph") == "B" and e.get("cat") == "eval"]
        assert len(evals) == 2
        sv = [e for e in evs if e.get("ph") == "B" and e["name"] == "sv"]
        assert len(sv) == 2
        for (ets, _), b in zip(evals, sv):
            assert b["ts"] >= ets

    def test_instants_and_attribution_survive(self, doc):
        evs = doc["traceEvents"]
        assert any(e.get("ph") == "i" and e["name"] == "cache-hit"
                   for e in evs)
        att = [e for e in evs if e.get("ph") == "B"
               and e.get("cat") == "eval"
               and "attribution" in e.get("args", {})]
        assert len(att) == 2
        assert att[0]["args"]["attribution"]["total"] == 700000.0

    def test_real_observed_trace_exports_cleanly(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TuningSession(_config(observe=True, trace=str(path))) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        doc = export_perfetto(read_trace(str(path)))
        json.dumps(doc)
        _check_spans_balanced(doc)
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"job", "eval", "pass"} <= cats


# ---------------------------------------------------------------------------
# consumer 2: the markdown run report

class TestReport:
    def test_golden_render(self):
        rendered = render_report(read_trace(str(FIXTURE)),
                                 title="obs fixture report")
        assert rendered == (GOLDEN / "obs_report_golden.md").read_text()

    def test_report_without_observe_degrades(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TuningSession(_config(trace=str(path))) as s:
            s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        text = render_report(read_trace(str(path)))
        assert "No pass telemetry" in text
        assert "No attribution telemetry" in text
        assert "## Results" in text

    def test_report_flags_malformed_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(FIXTURE.read_text() + "{broken\n")
        text = render_report(read_trace(str(path)))
        assert "WARNING" in text and "1 malformed" in text


# ---------------------------------------------------------------------------
# CLI surface

class TestCli:
    def test_repro_report_renders(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        rc = cli.main(["report", str(FIXTURE), "-o", str(out),
                       "--title", "obs fixture report"])
        assert rc == 0
        assert out.read_text() \
            == (GOLDEN / "obs_report_golden.md").read_text()

    def test_repro_trace_perfetto_export(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        rc = cli.main(["trace", str(FIXTURE), "--perfetto", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        _check_spans_balanced(doc)

    def test_tune_observe_flag_end_to_end(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        rc = cli.main(["tune", "ddot", "--max-evals", "12", "--n", str(N),
                       "--trace-out", str(trace), "--observe"])
        assert rc == 0
        kinds = {e["event"] for e in read_trace(str(trace))}
        assert {"pass", "attribution"} <= kinds
