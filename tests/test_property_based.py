"""Property-based tests (hypothesis) on core invariants.

* kernel semantics under random data and random transform parameters;
* the line search never returns a point worse than its start;
* cache-line walk invariants of the timing model;
* IR cloning is structure-preserving.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import PrefetchHint, verify
from repro.kernels import get_kernel, reference
from repro.machine import Context, pentium4e, run_function, summarize, \
    time_kernel
from repro.timing.tester import make_inputs

P4E = pentium4e()

_params = st.builds(
    TransformParams,
    sv=st.booleans(),
    unroll=st.sampled_from([1, 2, 3, 4, 8, 16]),
    lc=st.booleans(),
    ae=st.sampled_from([1, 2, 4]),
    wnt=st.booleans(),
)

_hints = st.sampled_from(list(PrefetchHint))
_dists = st.sampled_from([0, 64, 192, 512, 2048])


@st.composite
def params_with_prefetch(draw, arrays=("X", "Y")):
    p = draw(_params)
    for arr in arrays:
        d = draw(_dists)
        h = draw(_hints) if d else None
        p.prefetch[arr] = PrefetchParams(h, d)
    return p


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=params_with_prefetch(), n=st.integers(0, 70),
       seed=st.integers(0, 2**31))
def test_ddot_any_params_any_data(params, n, seed):
    """FKO must preserve dot semantics at every point of the space."""
    spec = get_kernel("ddot")
    k = FKO(P4E).compile(spec.hil, params)
    verify(k.fn)
    rng = np.random.default_rng(seed)
    X = rng.standard_normal(max(n, 1))
    Y = rng.standard_normal(max(n, 1))
    res = run_function(k.fn, {"X": X.copy(), "Y": Y.copy()}, {"N": n})
    want = float(X[:n] @ Y[:n])
    assert res.ret == pytest.approx(want, rel=1e-10, abs=1e-10)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=params_with_prefetch(arrays=("X",)), n=st.integers(0, 60),
       seed=st.integers(0, 2**31))
def test_idamax_any_params_any_data(params, n, seed):
    spec = get_kernel("idamax")
    k = FKO(P4E).compile(spec.hil, params)
    rng = np.random.default_rng(seed)
    X = rng.standard_normal(max(n, 1))
    res = run_function(k.fn, {"X": X.copy()}, {"N": n})
    want = int(np.argmax(np.abs(X[:n]))) if n else 0
    assert res.ret == want


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=params_with_prefetch(), n=st.integers(0, 60),
       seed=st.integers(0, 2**31), alpha=st.floats(-4, 4))
def test_daxpy_any_params_any_data(params, n, seed, alpha):
    spec = get_kernel("daxpy")
    k = FKO(P4E).compile(spec.hil, params)
    rng = np.random.default_rng(seed)
    X = rng.standard_normal(max(n, 1))
    Y = rng.standard_normal(max(n, 1))
    got = {"X": X.copy(), "Y": Y.copy()}
    run_function(k.fn, got, {"N": n, "alpha": alpha})
    want = Y[:n] + alpha * X[:n]
    assert np.allclose(got["Y"][:n], want, rtol=1e-12)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 100000),
       unroll=st.sampled_from([1, 2, 4, 8]))
def test_timing_positive_and_monotone_in_n(n, unroll):
    """More elements never cost fewer cycles."""
    spec = get_kernel("ddot")
    k = FKO(P4E).compile(spec.hil, TransformParams(sv=True, unroll=unroll))
    summ = summarize(k.fn)
    t1 = time_kernel(summ, P4E, Context.OUT_OF_CACHE, n)
    t2 = time_kernel(summ, P4E, Context.OUT_OF_CACHE, n + 128)
    assert 0 < t1.cycles <= t2.cycles * 1.001


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), n=st.sampled_from([0, 1, 7, 33]))
def test_reference_matches_untransformed_kernel(seed, n):
    """The NumPy oracle and plain lowered IR agree for every kernel."""
    from repro.hil import compile_hil
    rng = np.random.default_rng(seed)
    for name in ("dswap", "sscal", "dcopy", "sasum"):
        spec = get_kernel(name)
        fn = compile_hil(spec.hil)
        arrays, scalars = make_inputs(spec, n, rng)
        got = {k: v.copy() for k, v in arrays.items()}
        ref = {k: v.copy() for k, v in arrays.items()}
        fscalars = {k: v for k, v in scalars.items() if k != "N"}
        res = run_function(fn, got, {"N": n, **fscalars})
        want = reference(spec, {k: v[:n] for k, v in ref.items()}, fscalars)
        for out in spec.output_args:
            assert np.allclose(got[out][:n], ref[out][:n], rtol=1e-6)
        if spec.returns == "float" and n > 0:
            assert res.ret == pytest.approx(want, rel=1e-5)


@settings(max_examples=30, deadline=None)
@given(params=params_with_prefetch())
def test_clone_function_independent(params):
    """compile_kernel never mutates the cached lowered function."""
    from repro.hil import compile_hil
    from repro.fko.clonefn import clone_function
    spec = get_kernel("ddot")
    fn = compile_hil(spec.hil)
    before = [(b.name, len(b.instrs)) for b in fn.blocks]
    FKO(P4E).compile(spec.hil, params)
    clone = clone_function(fn)
    clone.blocks[0].instrs.clear()
    after = [(b.name, len(b.instrs)) for b in fn.blocks]
    assert before == after


@settings(max_examples=15, deadline=None)
@given(st.lists(st.sampled_from([64, 128, 512, 1024, 2048]),
                min_size=1, max_size=3, unique=True))
def test_search_never_worse_than_start(dists):
    """A (restricted) search over real timings must end <= start."""
    from repro.search import LineSearch, build_space
    spec = get_kernel("dasum")
    fko = FKO(P4E)
    a = fko.analyze(spec.hil)
    space = build_space(a, P4E, dist_lines=[d // 64 for d in dists])
    start = fko.defaults(spec.hil)
    from repro.timing.timer import Timer
    timer = Timer(P4E, Context.OUT_OF_CACHE, 20000)

    def ev(p):
        return timer.time(fko.compile(spec.hil, p), spec).cycles

    res = LineSearch(space, start, output_arrays=a.output_arrays).run(ev)
    assert res.best_cycles <= res.start_cycles
