"""Tests for the differential-correctness subsystem (repro.qa).

* the seeded sampler is deterministic and covers the whole grid;
* the shrinker's neighbors are strictly simpler and its result is
  1-minimal (property-based, against synthetic predicates — no
  compiles, so hypothesis can afford many examples);
* a deliberately miscompiling unroll transform is caught by the fuzzer,
  shrunk to a minimal repro, saved as an artifact, and the artifact
  replays to the identical failure while the bug exists — and reports
  "did not reproduce" once it is fixed;
* ``TuneConfig(verify_ir=True, test_best=True)`` never perturbs the
  search: cycles, chosen parameters and full history are bit-identical
  to a default run, serial and parallel;
* a tester-rejected winner emits the ``best-rejected`` trace event and
  raises instead of handing back a wrong kernel.
"""

import json

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

import repro.fko.pipeline as pipeline_mod
import repro.search.engine as engine_mod
from repro.cli import main
from repro.errors import KernelTestFailure
from repro.fko import TransformParams
from repro.fko.unroll import unroll as real_unroll
from repro.ir import Opcode
from repro.machine import Context
from repro.qa import (BASELINE_PARAMS, FuzzFailure, FuzzSample, iter_samples,
                      load_artifact, replay_artifact, run_fuzz, sample_sizes,
                      save_artifact, shrink_failure, simpler_neighbors)
from repro.search import TuneConfig, TuningSession, read_trace

N = 4000
EVALS = 40


def _config(**kw):
    kw.setdefault("run_tester", False)
    kw.setdefault("max_evals", EVALS)
    return TuneConfig(**kw)


# ---------------------------------------------------------------------------
# sampler

class TestSampler:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**20))
    def test_same_seed_same_stream(self, seed):
        a = [s.key() for s in iter_samples(seed, 12)]
        b = [s.key() for s in iter_samples(seed, 12)]
        assert a == b and len(a) == 12

    def test_different_seeds_differ(self):
        a = [s.key() for s in iter_samples(0, 20)]
        b = [s.key() for s in iter_samples(1, 20)]
        assert a != b

    def test_round_robin_covers_every_cell(self):
        samples = list(iter_samples(0, 40))
        cells = {(s.kernel, s.machine) for s in samples}
        assert len(cells) == 40          # 20 kernels x 2 machines
        machines = {m for _, m in cells}
        assert machines == {"p4e", "opteron"}
        kernels = {k for k, _ in cells}
        assert {"dgemm", "sstencil3", "dsumsq"} <= kernels

    def test_size_pool_hits_the_edges(self):
        sizes = sample_sizes(unroll=4, veclen=2, sv=True)   # step = 8
        for edge in (0, 1, 7, 8, 9, 15, 17):
            assert edge in sizes
        assert all(s >= 0 for s in sizes)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**20))
    def test_sample_json_round_trip(self, seed):
        for sample in iter_samples(seed, 6):
            blob = json.dumps(sample.to_dict())
            back = FuzzSample.from_dict(json.loads(blob))
            assert back.key() == sample.key()


# ---------------------------------------------------------------------------
# shrinker

def _complexity(sample):
    """Strictly decreases along every edge ``simpler_neighbors`` yields."""
    p = sample.params
    return (sample.n + int(p.sv) + int(p.wnt) + int(p.block_fetch)
            + (p.unroll - 1) + (p.ae - 1) + int(p.lc) + len(p.prefetch)
            + len(p.ext)
            + int(not p.copy_propagation) + int(not p.peephole)
            + int(not p.cf_cleanup)
            + int(p.register_allocation != "global"))


class TestShrinker:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**20))
    def test_neighbors_are_strictly_simpler(self, seed):
        for sample in iter_samples(seed, 4):
            score = _complexity(sample)
            for neighbor in simpler_neighbors(sample):
                assert _complexity(neighbor) < score
                assert neighbor.kernel == sample.kernel
                assert neighbor.machine == sample.machine

    def test_baseline_point_has_fewest_knobs(self):
        sample = FuzzSample(kernel="ddot", machine="p4e", n=0,
                            params=BASELINE_PARAMS.copy())
        assert list(simpler_neighbors(sample)) == []

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**20), min_unroll=st.sampled_from([2, 4, 8]),
           min_n=st.integers(1, 40))
    def test_shrink_result_is_one_minimal(self, seed, min_unroll, min_n):
        """Against a synthetic predicate (fails iff unroll >= U and
        N >= M) the greedy shrinker must land exactly on the 1-minimal
        failing sample: every strictly simpler neighbor passes."""
        def synthetic(sample):
            if sample.params.unroll >= min_unroll and sample.n >= min_n:
                return FuzzFailure(sample, "output", "synthetic mismatch")
            return None

        start = next((s for s in iter_samples(seed, 64)
                      if synthetic(s) is not None), None)
        assume(start is not None)
        shrunk = shrink_failure(synthetic(start), check=synthetic)
        assert synthetic(shrunk.sample) is not None
        assert shrunk.shrunk_from.key() == start.key()
        for neighbor in simpler_neighbors(shrunk.sample):
            assert synthetic(neighbor) is None
        # the minimum is known in closed form for this predicate
        assert shrunk.sample.n == min_n
        assert shrunk.sample.params.unroll == min_unroll

    def test_shrink_steps_counted(self):
        def synthetic(sample):
            if sample.params.unroll >= 2:
                return FuzzFailure(sample, "compile", "synthetic")
            return None
        start = FuzzSample(
            kernel="ddot", machine="p4e", n=100,
            params=TransformParams(sv=True, unroll=16, lc=True, ae=4,
                                   wnt=True))
        shrunk = shrink_failure(synthetic(start), check=synthetic)
        assert shrunk.shrink_steps > 0
        assert shrunk.sample.n == 0 and shrunk.sample.params.unroll == 2


# ---------------------------------------------------------------------------
# the real differential checker on a healthy compiler

class TestCleanFuzz:
    def test_small_campaign_is_clean_and_covers_grid(self):
        report = run_fuzz(seed=0, budget=28)
        assert report.ok and report.checked == 28
        assert len(report.coverage) == 28
        assert "no differential failures" in report.describe()

    def test_replay_of_stale_artifact_reports_clean(self, tmp_path):
        sample = FuzzSample(
            kernel="ddot", machine="p4e", n=2,
            params=TransformParams(sv=False, unroll=2, lc=False, ae=1,
                                   wnt=False))
        stale = FuzzFailure(sample, "return", "fabricated: never real")
        path = save_artifact(stale, tmp_path / "stale.json")
        back = load_artifact(path)
        assert back.to_dict() == stale.to_dict()
        result = replay_artifact(path)
        assert result.observed is None and not result.reproduced
        assert "did NOT reproduce" in result.describe()

    def test_fuzz_cli_clean(self, capsys):
        rc = main(["fuzz", "--seed", "0", "--budget", "28"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no differential failures" in out
        assert "28 (kernel, machine) cells" in out


# ---------------------------------------------------------------------------
# an injected miscompile must be caught, shrunk, saved and replayable

def _broken_unroll(fn, factor):
    """Real unroll, then flip the first FP add in the unrolled body —
    the archetypal "transform miscompiles at unroll > 1" bug."""
    real_unroll(fn, factor)
    if factor <= 1:
        return
    for block in fn.blocks:
        for instr in block.instrs:
            if instr.op is Opcode.FADD:
                instr.op = Opcode.FSUB
                return
            if instr.op is Opcode.VADD:
                instr.op = Opcode.VSUB
                return


class TestInjectedMiscompile:
    def test_caught_shrunk_and_replayable(self, tmp_path, monkeypatch):
        monkeypatch.setattr(pipeline_mod, "unroll", _broken_unroll)
        report = run_fuzz(seed=0, budget=8, kernels=("ddot",),
                          machines=("p4e",),
                          artifact_dir=str(tmp_path))
        assert not report.ok and report.raw_failures >= 1
        failure = report.failures[0]
        assert failure.stage == "return"
        # shrunk to the smallest sample that still runs the broken body:
        # one unrolled trip, no other transforms in the way
        assert failure.shrunk_from is not None
        assert failure.sample.params.unroll == 2
        assert not failure.sample.params.sv
        assert failure.sample.n <= 2 * failure.sample.params.unroll
        assert _complexity(failure.sample) < _complexity(failure.shrunk_from)

        # the artifact replays to the *identical* failure while broken...
        assert report.artifacts
        replay = replay_artifact(report.artifacts[0])
        assert replay.reproduced
        assert main(["fuzz", "--replay", report.artifacts[0]]) == 1

        # ...and is clean again once the bug is gone
        monkeypatch.setattr(pipeline_mod, "unroll", real_unroll)
        assert replay_artifact(report.artifacts[0]).observed is None
        assert main(["fuzz", "--replay", report.artifacts[0]]) == 0

    def test_fuzz_cli_exit_code_and_artifacts(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.setattr(pipeline_mod, "unroll", _broken_unroll)
        rc = main(["fuzz", "--seed", "0", "--budget", "6",
                   "--kernels", "ddot", "-m", "p4e",
                   "--artifact-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAILURES" in out and "artifact:" in out
        saved = list(tmp_path.glob("fuzz-ddot-p4e-*.json"))
        assert saved
        data = json.loads(saved[0].read_text())
        assert data["schema"] == 1 and data["stage"] in ("return", "output")

    def test_fuzzer_failures_deterministic_per_seed(self, monkeypatch):
        monkeypatch.setattr(pipeline_mod, "unroll", _broken_unroll)
        kw = dict(seed=3, budget=6, kernels=("ddot",), machines=("p4e",))
        a = run_fuzz(**kw)
        b = run_fuzz(**kw)
        assert a.raw_failures == b.raw_failures
        assert [f.sample.key() for f in a.failures] \
            == [f.sample.key() for f in b.failures]
        assert [f.error for f in a.failures] == [f.error for f in b.failures]


# ---------------------------------------------------------------------------
# engine wiring: verification observes, never perturbs

class TestVerifiedTuneEquivalence:
    @pytest.fixture(scope="class")
    def plain(self):
        with TuningSession(_config()) as s:
            return s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_verify_flags_bit_identical(self, plain, jobs):
        cfg = _config(jobs=jobs, verify_ir=True, test_best=True)
        with TuningSession(cfg) as s:
            audited = s.tune("ddot", "p4e", Context.OUT_OF_CACHE, N)
        assert audited.params.key() == plain.params.key()
        assert audited.search.best_cycles == plain.search.best_cycles
        assert audited.search.history == plain.search.history
        assert audited.timing.cycles == plain.timing.cycles

    def test_rejected_winner_emits_trace_event_and_raises(self, tmp_path,
                                                          monkeypatch):
        def failing_tester(compiled, spec):
            raise KernelTestFailure("injected tester failure")
        monkeypatch.setattr(engine_mod, "test_kernel", failing_tester)
        trace = tmp_path / "trace.jsonl"
        cfg = _config(max_evals=8, test_best=True, trace=str(trace))
        with pytest.raises(KernelTestFailure, match="injected"):
            with TuningSession(cfg) as s:
                s.tune("ddot", "p4e", Context.OUT_OF_CACHE, 1000)
        rejected = [e for e in read_trace(str(trace))
                    if e["event"] == "best-rejected"]
        assert len(rejected) == 1
        ev = rejected[0]
        assert ev["job"] and ev["params"]
        assert ev["best_cycles"] > 0
        assert "injected tester failure" in ev["error"]

    def test_run_tester_alone_stays_silent(self, tmp_path, monkeypatch):
        """``run_tester`` still raises on a bad winner but does not emit
        the audited event — ``test_best`` owns the trace schema."""
        def failing_tester(compiled, spec):
            raise KernelTestFailure("injected tester failure")
        monkeypatch.setattr(engine_mod, "test_kernel", failing_tester)
        trace = tmp_path / "trace.jsonl"
        cfg = TuneConfig(max_evals=8, run_tester=True, trace=str(trace))
        with pytest.raises(KernelTestFailure):
            with TuningSession(cfg) as s:
                s.tune("ddot", "p4e", Context.OUT_OF_CACHE, 1000)
        assert not [e for e in read_trace(str(trace))
                    if e["event"] == "best-rejected"]
