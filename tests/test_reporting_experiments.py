"""Tests for reporting helpers and experiment harness plumbing."""

import pytest

from repro.experiments import table1, table2
from repro.experiments.store import METHODS, ResultStore, paper_sizes
from repro.machine import Context, pentium4e
from repro.reporting import bar_chart, format_table, percent_of_best


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [["x", 1.25], ["yy", 10.5]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "bbb" in lines[2]
        assert "10.5" in lines[-1]

    def test_format_table_float_format(self):
        out = format_table(["v"], [[3.14159]], floatfmt="{:.3f}")
        assert "3.142" in out

    def test_bar_chart_scales_to_max(self):
        out = bar_chart(["k"], {"m": [50.0]}, width=10, vmax=100.0)
        assert "#####" in out and "######" not in out.replace("#####", "", 1)

    def test_bar_chart_multiple_series(self):
        out = bar_chart(["k1", "k2"], {"a": [1, 2], "b": [2, 4]})
        assert out.count("|") == 8  # 2 labels x 2 series x 2 pipes

    def test_percent_of_best(self):
        rows = {"m1": [10.0, 40.0], "m2": [20.0, 20.0]}
        pct = percent_of_best(rows)
        assert pct["m1"] == [50.0, 100.0]
        assert pct["m2"] == [100.0, 50.0]


class TestStaticHarnesses:
    def test_table1_shape(self):
        rows = table1.rows()
        assert len(rows) == 7
        text = table1.render()
        assert "iamax" in text and "2N" in text

    def test_table2_mentions_both_platforms(self):
        text = table2.render()
        assert "P4E" in text and "Opteron" in text
        assert "-xP" in text and "-xW" in text


class TestStore:
    def test_paper_sizes(self):
        full = paper_sizes(quick=False)
        quick = paper_sizes(quick=True)
        assert full[Context.OUT_OF_CACHE] == 80000
        assert full[Context.IN_L2] == 1024
        assert quick[Context.OUT_OF_CACHE] < full[Context.OUT_OF_CACHE]

    def test_memoization(self):
        store = ResultStore(quick=True)
        m = pentium4e()
        a = store.get(m, Context.IN_L2, "ddot", "FKO")
        b = store.get(m, Context.IN_L2, "ddot", "FKO")
        assert a is b

    def test_row_covers_all_methods(self):
        store = ResultStore(quick=True)
        row = store.row(pentium4e(), Context.IN_L2, "sscal")
        assert set(row) == set(METHODS)
        assert all(r.mflops > 0 for r in row.values())

    def test_unknown_method_rejected(self):
        store = ResultStore(quick=True)
        with pytest.raises(KeyError):
            store.get(pentium4e(), Context.IN_L2, "ddot", "clang")

    def test_atlas_result_carries_star(self):
        store = ResultStore(quick=True)
        res = store.get(pentium4e(), Context.IN_L2, "isamax", "ATLAS")
        assert res.display_kernel == "isamax*"


class TestRelativeRender:
    def test_render_contains_table_and_chart(self):
        from repro.experiments.relative import relative_performance
        store = ResultStore(quick=True)
        res = relative_performance(pentium4e(), Context.IN_L2, store,
                                   kernels=["sscal", "isamax"])
        text = res.render("Test figure")
        assert "Test figure" in text
        assert "AVG" in text and "VAVG" in text
        assert "|" in text  # bar chart present

    def test_percent_of_best_is_100_somewhere(self):
        from repro.experiments.relative import relative_performance
        store = ResultStore(quick=True)
        res = relative_performance(pentium4e(), Context.IN_L2, store,
                                   kernels=["ddot"])
        best = max(res.percent[m][0] for m in METHODS)
        assert best == pytest.approx(100.0)
