"""Tests for the optimization space and the modified line search."""

import pytest

from repro.errors import SearchError
from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import PrefetchHint
from repro.kernels import get_kernel
from repro.machine import Context
from repro.search import (LineSearch, TuneConfig, build_space,
                          compile_default, tune_kernel)
from repro.search.linesearch import PHASES


class TestSpace:
    def test_space_from_analysis(self, fko_p4e, p4e, ddot_src):
        a = fko_p4e.analyze(ddot_src)
        sp = build_space(a, p4e)
        assert sp.sv_options == [True, False]
        assert sp.wnt_options == [False]           # dot writes nothing
        assert sp.prefetch_arrays == ["X", "Y"]
        assert 0 in sp.dist_options
        assert max(sp.dist_options) >= 2048
        assert PrefetchHint.W not in sp.hint_options  # not on Intel

    def test_space_for_iamax(self, fko_p4e, p4e, iamax_src):
        a = fko_p4e.analyze(iamax_src)
        sp = build_space(a, p4e)
        assert sp.sv_options == [False]
        assert sp.ae_options == [1]

    def test_wnt_option_for_output_kernels(self, fko_p4e, p4e):
        a = fko_p4e.analyze(get_kernel("dcopy").hil)
        sp = build_space(a, p4e)
        assert sp.wnt_options == [False, True]

    def test_space_size_counts_cross_product(self, fko_p4e, p4e, ddot_src):
        a = fko_p4e.analyze(ddot_src)
        sp = build_space(a, p4e)
        assert sp.size > 10000  # the space the line search avoids sweeping

    def test_opteron_space_has_prefetchw(self, fko_opt, opt):
        a = fko_opt.analyze(get_kernel("dcopy").hil)
        sp = build_space(a, opt)
        assert PrefetchHint.W in sp.hint_options


class TestLineSearchMechanics:
    def _search(self, fko, machine, src, **kw):
        a = fko.analyze(src)
        sp = build_space(a, machine)
        start = fko.defaults(src)
        return LineSearch(sp, start, output_arrays=a.output_arrays, **kw)

    def test_result_no_worse_than_start(self, fko_p4e, p4e, ddot_src):
        calls = []
        def ev(params):
            calls.append(params.key())
            # arbitrary landscape: reward unroll 16 with prefetch
            c = 10000.0
            c -= 100 * min(params.unroll, 16)
            for arr in ("X", "Y"):
                if params.pf(arr).enabled:
                    c -= params.pf(arr).dist / 16.0
            return c
        ls = self._search(fko_p4e, p4e, ddot_src)
        res = ls.run(ev)
        assert res.best_cycles <= res.start_cycles
        assert res.best_params.unroll == 16

    def test_eval_caching(self, fko_p4e, p4e, ddot_src):
        seen = []
        def ev(params):
            seen.append(params.key())
            return 100.0
        ls = self._search(fko_p4e, p4e, ddot_src)
        ls.run(ev)
        assert len(seen) == len(set(seen))  # no duplicate evaluations

    def test_budget_respected(self, fko_p4e, p4e, ddot_src):
        def ev(params):
            return 100.0
        res = self._search(fko_p4e, p4e, ddot_src, max_evals=5).run(ev)
        assert res.n_evaluations <= 5

    def test_zero_budget_rejected(self, fko_p4e, p4e, ddot_src):
        with pytest.raises(SearchError):
            self._search(fko_p4e, p4e, ddot_src, max_evals=0)

    def test_ties_keep_incumbent(self, fko_p4e, p4e, ddot_src):
        """On a flat landscape the search must return the FKO defaults."""
        def ev(params):
            return 1000.0
        ls = self._search(fko_p4e, p4e, ddot_src)
        res = ls.run(ev)
        start = fko_p4e.defaults(ddot_src)
        assert res.best_params.key() == start.key()

    def test_phase_gain_product_equals_total(self, p4e, ddot_src):
        fko = FKO(p4e)
        spec = get_kernel("ddot")
        tk = tune_kernel(spec, p4e, Context.OUT_OF_CACHE, 20000,
                         config=TuneConfig(run_tester=False))
        gains = tk.search.phase_speedups()
        product = 1.0
        for p in PHASES:
            product *= gains[p]
        assert product == pytest.approx(tk.search.speedup_over_start,
                                        rel=1e-6)

    def test_history_records_phases(self, fko_p4e, p4e, ddot_src):
        ls = self._search(fko_p4e, p4e, ddot_src)
        ls.run(lambda p: 100.0)
        phases = {ph for ph, _, _ in ls.history}
        assert "PF DST" in phases and "UR" in phases


class TestDrivers:
    def test_ifko_beats_or_matches_fko(self, p4e):
        spec = get_kernel("dasum")
        fk = compile_default(spec, p4e, Context.OUT_OF_CACHE, 20000)
        tk = tune_kernel(spec, p4e, Context.OUT_OF_CACHE, 20000,
                         config=TuneConfig(run_tester=False))
        assert tk.mflops >= fk.mflops * 0.999

    def test_tuned_kernel_passes_tester(self, p4e):
        spec = get_kernel("daxpy")
        tk = tune_kernel(spec, p4e, Context.OUT_OF_CACHE, 20000,
                         config=TuneConfig(run_tester=True))   # raises on failure
        assert tk.params is tk.compiled.params

    def test_tuned_result_reports_search(self, opt):
        spec = get_kernel("dcopy")
        tk = tune_kernel(spec, opt, Context.OUT_OF_CACHE, 20000,
                         config=TuneConfig(run_tester=False))
        assert tk.search is not None
        assert tk.search.n_evaluations > 10
        assert tk.timing.cycles == pytest.approx(tk.search.best_cycles,
                                                 rel=0.02)

    def test_compile_default_is_fko_defaults(self, p4e, ddot_spec):
        fk = compile_default(ddot_spec, p4e, Context.OUT_OF_CACHE, 20000)
        d = FKO(p4e).defaults(ddot_spec.hil)
        assert fk.compiled.params.key() == d.key()
