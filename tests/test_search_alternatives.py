"""Tests for the alternative search strategies (section 2.3's named
alternatives: simulated annealing, genetic algorithms, plus random and
exhaustive baselines)."""

import pytest

from repro.errors import SearchError
from repro.fko import FKO, TransformParams
from repro.kernels import get_kernel
from repro.machine import Context, pentium4e
from repro.search import (LineSearch, STRATEGIES, build_space,
                          exhaustive_search, genetic_search, random_search,
                          simulated_annealing)
from repro.timing.timer import Timer


@pytest.fixture(scope="module")
def setup():
    spec = get_kernel("dasum")
    p4e = pentium4e()
    fko = FKO(p4e)
    a = fko.analyze(spec.hil)
    # a trimmed space keeps the exhaustive sweep fast
    space = build_space(a, p4e, unrolls=(1, 4, 8), aes=(1, 2),
                        dist_lines=(2, 8, 16))
    start = fko.defaults(spec.hil)
    timer = Timer(p4e, Context.OUT_OF_CACHE, 20000)
    cache = {}

    def evaluate(params):
        key = params.key()
        if key not in cache:
            cache[key] = timer.time(fko.compile(spec.hil, params),
                                    spec).cycles
        return cache[key]

    return spec, a, space, start, evaluate


ALL = [random_search, simulated_annealing, genetic_search]


class TestStrategies:
    @pytest.mark.parametrize("strategy", ALL)
    def test_never_worse_than_start(self, strategy, setup):
        _, a, space, start, evaluate = setup
        res = strategy(evaluate, space, start, max_evals=40, seed=3)
        assert res.best_cycles <= res.start_cycles

    @pytest.mark.parametrize("strategy", ALL)
    def test_budget_respected(self, strategy, setup):
        _, a, space, start, evaluate = setup
        res = strategy(evaluate, space, start, max_evals=15, seed=1)
        assert res.n_evaluations <= 15

    @pytest.mark.parametrize("strategy", ALL)
    def test_zero_budget_rejected(self, strategy, setup):
        _, a, space, start, evaluate = setup
        with pytest.raises(SearchError):
            strategy(evaluate, space, start, max_evals=0)

    @pytest.mark.parametrize("strategy", ALL)
    def test_deterministic_given_seed(self, strategy, setup):
        _, a, space, start, evaluate = setup
        r1 = strategy(evaluate, space, start, max_evals=30, seed=9)
        r2 = strategy(evaluate, space, start, max_evals=30, seed=9)
        assert r1.best_params.key() == r2.best_params.key()
        assert r1.best_cycles == r2.best_cycles

    def test_registry_complete(self):
        assert set(STRATEGIES) == {"random", "anneal", "genetic",
                                   "exhaustive"}

    def test_shims_warn_and_match_the_registry(self, setup):
        """The functional wrappers are deprecated shims over
        make_searcher: they must warn, and return bit-identical results
        to a direct registry construction."""
        from repro.search.strategies import make_searcher
        _, a, space, start, evaluate = setup
        with pytest.warns(DeprecationWarning, match="make_searcher"):
            shimmed = random_search(evaluate, space, start,
                                    max_evals=25, seed=7)
        direct = make_searcher("random", space, start, max_evals=25,
                               seed=7).run(evaluate)
        assert shimmed.best_params.key() == direct.best_params.key()
        assert shimmed.best_cycles == direct.best_cycles
        assert shimmed.history == direct.history


class TestAgainstExhaustive:
    def test_line_search_matches_exhaustive_on_small_space(self, setup):
        """The paper's claim, quantified: on a space small enough to
        sweep, the seeded line search finds (near-)optimal points at a
        fraction of the evaluations."""
        _, a, space, start, evaluate = setup
        gold = exhaustive_search(evaluate, space, start, max_evals=100000)
        ls = LineSearch(space, start,
                        output_arrays=a.output_arrays).run(evaluate)
        # within noise of the exhaustive optimum...
        assert ls.best_cycles <= gold.best_cycles * 1.03
        # ...at a small fraction of the cost
        assert ls.n_evaluations < gold.n_evaluations / 2

    def test_exhaustive_covers_shared_distance_grid(self, setup):
        _, a, space, start, evaluate = setup
        gold = exhaustive_search(evaluate, space, start, max_evals=100000)
        # sv(2) * wnt(1) * ur(3) * ae(2) * (1 + dists(3)*hints(3)) = 120
        assert gold.n_evaluations <= 2 * 1 * 3 * 2 * 10 + 1
        assert gold.n_evaluations > 50
