"""Tests for the tuning service: schema, scheduler, job layer, daemon.

The layering contract under test:

* **schema** — every spelling of the same problem digests identically;
  ``from_dict`` is tolerant; the digest changes when the answer could;
* **scheduler** — FairQueue round-robin, InflightTable coalescing,
  BudgetLedger accounting, idempotent Scheduler shutdown;
* **jobs** — identical in-flight requests share one engine run, repeats
  are answered from memory or the persistent result store without
  re-evaluation, the event stream replays exactly what the trace file
  records, and the global evaluation ceiling refuses fresh work;
* **daemon** — the HTTP transport adds nothing: answers through
  ``repro serve`` are bit-identical (history digest and all) to the
  in-process API, budget exhaustion maps to 429, and ``/v1/compile``
  matches the local differential-fuzzer digest.
"""

import json
import threading

import pytest

from repro.machine import Context
from repro.search import TuneConfig, TuningSession, read_trace
from repro.search.scheduler import (BudgetLedger, FairQueue, InflightTable,
                                    Scheduler)
from repro.service import (BudgetExhaustedError, JobManager, ServeResultStore,
                           TuneRequest, TuneResponse, history_digest)
from repro.service.daemon import start_server
from repro.client import (LocalClient, ServeClient, ServiceError,
                          make_client)

N = 4000
EVALS = 40


def _config(**kw):
    kw.setdefault("run_tester", False)
    kw.setdefault("max_evals", EVALS)
    return TuneConfig(**kw)


def _request(**kw):
    kw.setdefault("kernel", "dscal")
    kw.setdefault("machine", "p4e")
    kw.setdefault("context", "out-of-cache")
    kw.setdefault("n", N)
    kw.setdefault("budget", EVALS)
    kw.setdefault("test", False)
    return TuneRequest(**kw)


# ---------------------------------------------------------------------------
# schema: canonicalization, digests, tolerant parsing

class TestTuneRequestSchema:
    def test_spellings_digest_identically(self):
        a = _request(machine="p4e", context="out-of-cache")
        b = _request(machine="P4E", context="oc")
        assert a.digest() == b.digest()
        assert a.canonical() == b.canonical()

    def test_default_n_matches_paper(self):
        from repro.timing.timer import paper_n
        r = TuneRequest(kernel="ddot", context="in-l2")
        assert r.n == paper_n(Context.IN_L2)
        assert r.context == Context.IN_L2.value

    def test_legacy_payload_digest_and_defaults_unchanged(self):
        # the exact field set a pre-tiling client sends: it must parse,
        # canonicalize and digest exactly like a native construction
        legacy = {"schema": 1, "kernel": "dscal", "machine": "P4E",
                  "context": "oc", "n": N, "strategy": "line",
                  "seed": 0, "budget": EVALS, "test": False}
        assert TuneRequest.from_dict(legacy).digest() == _request().digest()
        # vector kernels keep the paper's default N (old digests stable)
        from repro.timing.timer import paper_n
        assert TuneRequest(kernel="ddot").n == \
            paper_n(Context.OUT_OF_CACHE)
        # cubic nest kernels default to matrix orders instead
        assert TuneRequest(kernel="dgemm").n == 512
        assert TuneRequest(kernel="dgemm", context="in-l2").n == 160

    def test_answer_shaping_fields_change_digest(self):
        base = _request()
        assert _request(seed=1).digest() != base.digest()
        assert _request(budget=EVALS + 1).digest() != base.digest()
        assert _request(kernel="ddot").digest() != base.digest()

    def test_from_dict_tolerates_unknown_keys_and_alias(self):
        r = TuneRequest.from_dict({"schema": 1, "kernel": "dscal",
                                   "max_evals": 77, "future_knob": True})
        assert r.budget == 77
        with pytest.raises(ValueError):
            TuneRequest.from_dict({"schema": 99, "kernel": "dscal"})
        with pytest.raises(ValueError):
            TuneRequest.from_dict({"schema": 1})   # no kernel

    def test_unknown_kernel_and_context_refused(self):
        with pytest.raises(ValueError):
            TuneRequest(kernel="nope")
        with pytest.raises(ValueError):
            _request(context="in-l9")

    def test_to_config_keeps_operational_knobs(self, tmp_path):
        base = TuneConfig(jobs=3, cache_dir=str(tmp_path / "c"))
        cfg = _request(budget=17, seed=4).to_config(base)
        assert cfg.jobs == 3 and cfg.cache_dir == str(tmp_path / "c")
        assert cfg.max_evals == 17 and cfg.seed == 4
        assert cfg.run_tester is False

    def test_response_roundtrip(self):
        resp = TuneResponse(digest="d" * 64, job_id="j-1", status="done",
                            result=None, stats={"evaluations": 3},
                            wall=1.5, served_from="store")
        back = TuneResponse.from_dict(json.loads(json.dumps(resp.to_dict())))
        assert back.digest == resp.digest and back.served_from == "store"
        assert back.stats == {"evaluations": 3}


# ---------------------------------------------------------------------------
# scheduler primitives

class TestSchedulerPrimitives:
    def test_fair_queue_round_robin(self):
        q = FairQueue()
        for item in ("a1", "a2", "a3"):
            q.push(item, client="a")
        q.push("b1", client="b")
        q.push("c1", client="c")
        assert [q.pop() for _ in range(5)] == ["a1", "b1", "c1", "a2", "a3"]
        assert q.pop() is None and len(q) == 0

    def test_fair_queue_single_client_is_fifo(self):
        q = FairQueue()
        for i in range(5):
            q.push(i)
        assert [q.pop() for _ in range(5)] == list(range(5))

    def test_fair_queue_remove(self):
        q = FairQueue()
        q.push("x", client="a")
        q.push("y", client="a")
        assert q.remove("x") and not q.remove("x")
        assert q.pop() == "y"

    def test_inflight_claims_coalesce(self):
        t = InflightTable()
        slot, created = t.claim("d1", lambda: object())
        again, created2 = t.claim("d1", lambda: object())
        assert created and not created2 and slot is again
        assert t.coalesced == 1 and len(t) == 1
        t.release("d1")
        assert t.get("d1") is None

    def test_budget_ledger(self):
        led = BudgetLedger(max_total_evals=10)
        led.charge("j-1", 6, cache_hits=2)
        assert not led.exhausted()
        led.charge("j-2", 4)
        assert led.exhausted()
        d = led.to_dict()
        assert d["total_evaluations"] == 10
        assert d["jobs"]["j-1"] == {"evaluations": 6, "cache_hits": 2}

    def test_scheduler_shutdown_idempotent(self):
        s = Scheduler(jobs=1)
        assert s.pool() is None          # serial: no pool to own
        s.shutdown()
        s.shutdown()                     # safe on error paths
        s.mark_broken()
        assert s.broken and s.pool() is None


# ---------------------------------------------------------------------------
# job layer: dedup, cache answers, events, budget

class TestJobManager:
    def test_repeat_is_served_from_memory(self):
        with JobManager(config=_config()) as m:
            first = m.run_inline(_request())
            evals = m.session.stats.evaluations
            second = m.run_inline(_request(machine="P4E", context="oc"))
        assert first.served_from is None and second.served_from == "memory"
        assert m.session.stats.evaluations == evals   # no second run
        assert second.result == first.result
        assert second.history_digest == first.history_digest
        assert m.launched == 1 and m.cache_answers == 1

    def test_store_answers_survive_a_restart(self, tmp_path):
        results = str(tmp_path / "results")
        with JobManager(config=_config(), results_dir=results) as m:
            first = m.run_inline(_request())
        # a different manager (daemon restart) pointed at the same store
        with JobManager(config=_config(), results_dir=results) as m2:
            again = m2.run_inline(_request())
            assert m2.session.stats.evaluations == 0
        assert again.served_from == "store"
        assert again.history_digest == first.history_digest
        assert again.tuned().params.key() == first.tuned().params.key()

    def test_concurrent_identical_requests_share_one_run(self):
        with JobManager(config=_config()) as m:
            tickets = []
            def submit():
                tickets.append(m.submit(_request()))
            threads = [threading.Thread(target=submit) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            hows = sorted(how for _, how in tickets)
            assert hows == ["coalesced", "coalesced", "coalesced", "new"]
            jobs = {job.id for job, _ in tickets}
            assert len(jobs) == 1                     # one shared job
            with LocalClient(manager=m) as client:
                response = client.wait(tickets[0][0].id)
        assert response.ok and m.launched == 1 and m.coalesced == 3

    def test_event_stream_replays_the_trace_file(self, tmp_path):
        trace = tmp_path / "serve.jsonl"
        with JobManager(config=_config(trace=str(trace))) as m:
            m.run_inline(_request())
            job = next(iter(m.jobs.values()))
            streamed = list(LocalClient(manager=m).events(job.id))
        on_disk = read_trace(str(trace))
        assert streamed == on_disk
        kinds = {e["event"] for e in streamed}
        assert {"job-start", "eval", "job-end"} <= kinds

    def test_budget_ceiling_refuses_fresh_work(self):
        with JobManager(config=_config(), max_total_evals=1) as m:
            first = m.run_inline(_request())
            assert first.ok
            # a repeat costs nothing and is still answered
            again = m.run_inline(_request())
            assert again.served_from == "memory"
            with pytest.raises(BudgetExhaustedError):
                m.submit(_request(kernel="dcopy"))

    def test_error_result_is_not_cached(self, monkeypatch):
        with JobManager(config=_config()) as m:
            def boom(*a, **kw):
                raise RuntimeError("engine fell over")
            monkeypatch.setattr(m.session, "tune", boom)
            with pytest.raises(ServiceError, match="engine fell over"):
                LocalClient(manager=m).tune(_request())
            assert m.errors == 1
            assert m._done_by_digest == {}

    def test_close_is_idempotent(self):
        m = JobManager(config=_config())
        m.start()
        m.close()
        m.close()
        assert m._dispatcher is None


# ---------------------------------------------------------------------------
# result store

class TestServeResultStore:
    def test_put_get_list(self, tmp_path):
        store = ServeResultStore(str(tmp_path))
        resp = TuneResponse(digest="ab" + "0" * 62, job_id="j-1",
                            status="done", stats={})
        store.put(resp.digest, resp)
        assert store.get(resp.digest)["digest"] == resp.digest
        assert store.get("ff" + "0" * 62) is None
        assert len(store) == 1 and len(store.list()) == 1

    def test_corrupt_entry_is_skipped(self, tmp_path):
        store = ServeResultStore(str(tmp_path))
        bad = store._path("cd" + "0" * 62)
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("NOT JSON")
        assert store.get("cd" + "0" * 62) is None
        assert store.list() == []


# ---------------------------------------------------------------------------
# daemon: HTTP transport over the same job layer

@pytest.fixture(scope="class")
def daemon():
    handle = start_server("127.0.0.1", 0, config=_config())
    with handle:
        yield handle


class TestDaemon:
    def test_daemon_matches_in_process_bit_identically(self, daemon):
        with TuningSession(_config()) as s:
            local = s.tune("dscal", "p4e", Context.OUT_OF_CACHE, N)
        client = ServeClient(daemon.url)
        response = client.tune(_request())
        served = response.tuned()
        assert response.history_digest == history_digest(local.search)
        assert served.params.key() == local.params.key()
        assert served.search.best_cycles == local.search.best_cycles
        assert served.search.history == local.search.history
        assert served.mflops == local.mflops

    def test_repeat_over_http_is_cache_answered(self, daemon):
        client = ServeClient(daemon.url)
        first = client.tune(_request())
        stats0 = client.stats()
        again = client.tune(_request())
        stats1 = client.stats()
        assert again.served_from in ("memory", "store")
        assert again.history_digest == first.history_digest
        assert stats1["cache_answers"] > stats0["cache_answers"]
        assert stats1["launched"] == stats0["launched"]

    def test_legacy_payload_replays_identically_over_http(self, daemon):
        # a pre-tiling wire payload must be answered bit-identically to
        # an in-process run of the same problem
        legacy = {"schema": 1, "kernel": "dscal", "machine": "p4e",
                  "context": "out-of-cache", "n": N, "strategy": "line",
                  "seed": 0, "budget": EVALS, "test": False}
        with TuningSession(_config()) as s:
            local = s.tune("dscal", "p4e", Context.OUT_OF_CACHE, N)
        client = ServeClient(daemon.url)
        response = client.tune(TuneRequest.from_dict(legacy))
        assert response.history_digest == history_digest(local.search)
        assert response.tuned().params.key() == local.params.key()

    def test_submit_ticket_and_event_replay(self, daemon):
        client = ServeClient(daemon.url)
        ticket = client.submit(_request())
        assert set(ticket) == {"job_id", "digest", "status", "how"}
        response = client.wait(ticket["job_id"], timeout=120)
        assert response.ok
        events = list(client.events(ticket["job_id"]))
        snap = client.job(ticket["job_id"])
        assert snap["state"] == "done"
        assert len(events) == snap["n_events"] > 0
        # replay from an offset returns exactly the tail
        tail = list(client.events(ticket["job_id"], start=len(events) - 2))
        assert tail == events[-2:]

    def test_healthz_and_stats_shape(self, daemon):
        client = ServeClient(daemon.url)
        health = client.healthz()
        assert health["ok"] is True
        stats = client.stats()
        for key in ("submitted", "launched", "deduped", "cache_answers",
                    "engine", "budget", "config"):
            assert key in stats

    def test_results_listing(self, daemon):
        client = ServeClient(daemon.url)
        client.tune(_request())
        results = client.results(limit=5)
        assert results and results[0]["digest"]

    def test_bad_requests_are_400s(self, daemon):
        client = ServeClient(daemon.url)
        with pytest.raises(ServiceError, match="400"):
            client._json("POST", "/v1/tune", {"schema": 1})
        with pytest.raises(ServiceError, match="404"):
            client.job("j-999999")
        with pytest.raises(ServiceError, match="404"):
            client._json("GET", "/v1/nope")

    def test_compile_matches_local_fuzzer_digest(self, daemon):
        from repro.fko import TransformParams
        from repro.qa.differ import compile_digest
        from repro.qa.sampler import FuzzSample
        client = ServeClient(daemon.url)
        # register_allocation off leaves raw VRegs in the printed IR —
        # the canonical dump must erase the global uid counter's offset
        params = TransformParams(sv=False, unroll=2, lc=False, ae=1,
                                 wnt=False, register_allocation="off")
        sample = FuzzSample(kernel="dscal", machine="p4e",
                            params=params, n=64)
        local = compile_digest(sample)
        remote = client.compile("dscal", "p4e", params.to_dict())
        assert remote["ok"]
        assert remote["ir_digest"] == local["ir_digest"]
        assert remote["applied"] == local["applied"]


class TestDaemonStaging:
    def test_staged_concurrent_dedup_over_http(self):
        """Two identical HTTP submissions while the dispatcher is
        parked must coalesce onto one job and one engine run."""
        handle = start_server("127.0.0.1", 0, config=_config(),
                              autostart=False)
        with handle:
            client = ServeClient(handle.url)
            t1 = client.submit(_request())
            t2 = client.submit(_request())
            assert t1["how"] == "new" and t2["how"] == "coalesced"
            assert t1["job_id"] == t2["job_id"]
            handle.manager.start()
            response = client.wait(t1["job_id"], timeout=120)
            assert response.ok
            stats = client.stats()
            assert stats["launched"] == 1 and stats["deduped"] == 1

    def test_budget_exhaustion_is_http_429(self):
        handle = start_server("127.0.0.1", 0, config=_config(),
                              max_total_evals=1)
        with handle:
            client = ServeClient(handle.url)
            assert client.tune(_request()).ok
            # cached repeat still answered after the ledger is spent
            assert client.tune(_request()).served_from is not None
            with pytest.raises(ServiceError, match="429"):
                client.submit(_request(kernel="dcopy"))


# ---------------------------------------------------------------------------
# client facade

class TestClientFacade:
    def test_make_client_picks_transport(self):
        local = make_client()
        assert isinstance(local, LocalClient)
        local.close()
        assert isinstance(make_client("http://127.0.0.1:1"), ServeClient)

    def test_facade_exports(self):
        import repro
        for name in ("TuneRequest", "TuneResponse", "history_digest",
                     "LocalClient", "ServeClient", "ServiceError",
                     "TuneClient", "make_client"):
            assert hasattr(repro, name)

    def test_local_client_matches_plain_session(self):
        with TuningSession(_config()) as s:
            local = s.tune("dscal", "p4e", Context.OUT_OF_CACHE, N)
        with make_client(config=_config()) as client:
            response = client.tune(_request())
        assert response.history_digest == history_digest(local.search)
        assert response.tuned().params.key() == local.params.key()

    def test_unreachable_daemon_is_a_service_error(self):
        client = ServeClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()

    def test_tune_kwargs_shorthand(self):
        with make_client(config=_config()) as client:
            response = client.tune(kernel="dscal", n=N, budget=EVALS,
                                   test=False)
        assert response.ok
        with pytest.raises(TypeError):
            client.tune(_request(), kernel="dscal")


# ---------------------------------------------------------------------------
# canonical IR text (the compile-digest oracle's foundation)

class TestCanonicalText:
    def test_uid_offsets_do_not_change_the_canonical_dump(self):
        """Compiling the same point twice in one process advances the
        global VReg counter, so the plain dumps differ whenever VRegs
        survive (register allocation off) — the canonical dumps must
        not."""
        from repro.fko import FKO, TransformParams
        from repro.ir import canonical_function_text, format_function
        from repro.kernels import get_kernel
        from repro.machine import get_machine
        params = TransformParams(sv=False, unroll=2, lc=False, ae=1,
                                 wnt=False, register_allocation="off")
        hil = get_kernel("dscal").hil
        one = FKO(get_machine("p4e")).compile(hil, params)
        two = FKO(get_machine("p4e")).compile(hil, params)
        assert format_function(one.fn) != format_function(two.fn)
        assert (canonical_function_text(one.fn)
                == canonical_function_text(two.fn))

    def test_renumbering_keeps_distinct_registers_distinct(self):
        from repro.ir.printer import _VREG_TOKEN

        def canon(text):
            mapping = {}
            return _VREG_TOKEN.sub(
                lambda m: f"%{m.group(1)}."
                          f"{mapping.setdefault(m.group(2), len(mapping))}",
                text)

        assert canon("%x.17 %y.3 %x.17") == "%x.0 %y.1 %x.0"
        assert canon("%a.5 %a.9") == "%a.0 %a.1"


# ---------------------------------------------------------------------------
# deprecation shim

class TestDeprecations:
    def test_collect_events_warns_and_still_buffers(self):
        with pytest.warns(DeprecationWarning, match="buffer_events"):
            s = TuningSession(_config(), collect_events=True)
        try:
            s.emit("eval", wall=0.0)
            assert s.drain_events()
        finally:
            s.close()
