"""The declarative dimension API of the search space: generic
accessors, legality gating, draw order, and exact cardinality (the
``size`` regression that used to omit ``block_fetch_options``)."""

from __future__ import annotations

import pytest

from repro.fko import FKO, TransformParams
from repro.kernels import get_kernel
from repro.search.space import (SearchSpace, build_space, dim_get,
                                dim_set, tile_options)
from repro.hil.tiling import nest_info


@pytest.fixture(scope="module")
def dasum_space():
    from repro.machine import pentium4e
    p4e = pentium4e()
    spec = get_kernel("dasum")
    analysis = FKO(p4e).analyze(spec.hil)
    return build_space(analysis, p4e)


@pytest.fixture(scope="module")
def gemm_space():
    from repro.machine import pentium4e
    p4e = pentium4e()
    spec = get_kernel("dgemm")
    analysis = FKO(p4e).analyze(spec.hil)
    return build_space(analysis, p4e, nest=nest_info(spec.hil))


# ---------------------------------------------------------------------------
# accessors

class TestDimAccessors:
    def test_attribute_round_trip(self):
        p = TransformParams()
        for name, value in (("sv", False), ("wnt", True), ("unroll", 8),
                            ("ae", 4), ("block_fetch", True)):
            q = dim_set(p, name, value)
            assert dim_get(q, name) == value
            assert dim_get(p, name) != value   # original untouched

    def test_prefetch_round_trip(self, dasum_space):
        arr = dasum_space.prefetch_arrays[0]
        hint = dasum_space.hint_options[0]
        p = dim_set(TransformParams(), f"pf_dist:{arr}", 256)
        assert dim_get(p, f"pf_dist:{arr}") == 256
        q = dim_set(p, f"pf_hint:{arr}", hint)
        assert dim_get(q, f"pf_hint:{arr}") is hint
        # zero distance drops the whole prefetch unit
        r = dim_set(q, f"pf_dist:{arr}", 0)
        assert not r.pf(arr).enabled
        # a hint without a distance is not a point in the space
        s = dim_set(TransformParams(), f"pf_hint:{arr}", hint)
        assert not s.pf(arr).enabled

    def test_tile_round_trip(self):
        p = dim_set(TransformParams(), "tile:k", 64)
        assert dim_get(p, "tile:k") == 64
        assert p.tiles() == {"k": 64}
        q = dim_set(p, "tile:k", 0)
        assert dim_get(q, "tile:k") == 0
        assert q.key() == TransformParams().key()   # ext fully erased


# ---------------------------------------------------------------------------
# dimension lists

class TestDimensions:
    def test_legacy_space_has_no_tile_dims(self, dasum_space):
        assert dasum_space.tile_dims == []

    def test_gemm_space_grows_tile_dims(self, gemm_space):
        names = [d.name for d in gemm_space.tile_dims]
        assert names == ["tile:i", "tile:k", "tile:j"]
        for d in gemm_space.tile_dims:
            assert d.options[0] == 0          # untiled leads
            assert d.group == "tile"
            assert all(t >= 0 for t in d.options)

    def test_tile_options_respect_l2_capacity(self, gemm_space):
        from repro.machine import pentium4e
        cap = 0.75 * pentium4e().l2.size
        for d in gemm_space.tile_dims:
            for t in d.options[1:]:
                assert 3 * t * t * 8 <= cap

    def test_hint_dim_is_gated_on_distance(self, dasum_space):
        arr = dasum_space.prefetch_arrays[0]
        by_name = {d.name: d for d in dasum_space.dimensions}
        hint = by_name[f"pf_hint:{arr}"]
        dist = by_name[f"pf_dist:{arr}"]
        assert hint.group == dist.group == f"pf:{arr}"
        assert not hint.legal({dist.name: 0})
        assert hint.legal({dist.name: 128})

    def test_block_fetch_is_not_sampled(self, dasum_space):
        bf = next(d for d in dasum_space.dimensions
                  if d.name == "block_fetch")
        assert not bf.sampled

    def test_draw_skips_illegal_dims(self, dasum_space):
        # always choosing the null option => no prefetch, no hint draw
        drawn = []

        def choose(dim):
            drawn.append(dim.name)
            return dim.options[0]

        p = dasum_space.draw(choose)
        assert not any(pf.enabled for pf in p.prefetch.values())
        assert not any(name.startswith("pf_hint:") for name in drawn)


# ---------------------------------------------------------------------------
# cardinality (the generic size formula)

def _expected_size(sp: SearchSpace) -> int:
    nz = len([d for d in sp.dist_options if d > 0])
    total = (len(sp.sv_options) * len(sp.wnt_options)
             * len(sp.unroll_options) * len(sp.ae_options)
             * len(sp.block_fetch_options))
    for _arr in sp.prefetch_arrays:
        total *= 1 + nz * len(sp.hint_options)
    for opts in sp.tile_options.values():
        total *= len(opts)
    return total


class TestSize:
    def test_size_counts_block_fetch(self):
        from repro.machine import pentium4e
        p4e = pentium4e()
        analysis = FKO(p4e).analyze(get_kernel("dasum").hil)
        off = build_space(analysis, p4e, enable_block_fetch=False)
        on = build_space(analysis, p4e, enable_block_fetch=True)
        assert on.size == 2 * off.size   # the old formula dropped this

    def test_size_matches_closed_form(self, dasum_space, gemm_space):
        assert dasum_space.size == _expected_size(dasum_space)
        assert gemm_space.size == _expected_size(gemm_space)
        assert gemm_space.size > dasum_space.size

    def test_no_nest_means_no_tile_options(self):
        from repro.machine import pentium4e
        assert tile_options(None, pentium4e()) == {}
