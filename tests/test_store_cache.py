"""Tests for the experiment store's optional disk persistence."""

import json
import pathlib

import pytest

from repro.experiments.store import MethodResult, ResultStore
from repro.machine import Context, pentium4e


class TestDiskCache:
    def test_writes_and_reloads(self, tmp_path):
        s1 = ResultStore(quick=True, cache_dir=str(tmp_path))
        r1 = s1.get(pentium4e(), Context.IN_L2, "sscal", "FKO")
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        s2 = ResultStore(quick=True, cache_dir=str(tmp_path))
        r2 = s2.get(pentium4e(), Context.IN_L2, "sscal", "FKO")
        assert r2.mflops == r1.mflops
        assert r2.cycles == r1.cycles

    def test_filename_carries_version_and_size(self, tmp_path):
        from repro import __version__
        s = ResultStore(quick=True, cache_dir=str(tmp_path))
        s.get(pentium4e(), Context.IN_L2, "sscal", "gcc+ref")
        name = next(tmp_path.glob("*.json")).name
        assert f"v{__version__}" in name
        assert "1024" in name and "sscal" in name

    def test_ifko_not_reloaded_from_disk(self, tmp_path):
        """ifko results carry SearchResult detail that the JSON summary
        cannot represent, so they are recomputed per process."""
        s1 = ResultStore(quick=True, cache_dir=str(tmp_path))
        r1 = s1.get(pentium4e(), Context.IN_L2, "sscal", "ifko")
        assert r1.search is not None
        s2 = ResultStore(quick=True, cache_dir=str(tmp_path))
        r2 = s2.get(pentium4e(), Context.IN_L2, "sscal", "ifko")
        assert r2.search is not None   # recomputed, not a summary

    def test_corrupt_cache_file_ignored(self, tmp_path):
        s = ResultStore(quick=True, cache_dir=str(tmp_path))
        s.get(pentium4e(), Context.IN_L2, "sscal", "FKO")
        f = next(tmp_path.glob("*.json"))
        f.write_text("{ not json")
        s2 = ResultStore(quick=True, cache_dir=str(tmp_path))
        r = s2.get(pentium4e(), Context.IN_L2, "sscal", "FKO")
        assert r.mflops > 0  # silently recomputed

    def test_no_cache_dir_means_memory_only(self):
        s = ResultStore(quick=True, cache_dir=None)
        assert s.cache_dir is None
        r = s.get(pentium4e(), Context.IN_L2, "sscal", "FKO")
        assert r.mflops > 0

    def test_starred_flag_round_trips(self, tmp_path):
        s1 = ResultStore(quick=True, cache_dir=str(tmp_path))
        r1 = s1.get(pentium4e(), Context.IN_L2, "isamax", "ATLAS")
        assert r1.starred
        s2 = ResultStore(quick=True, cache_dir=str(tmp_path))
        r2 = s2.get(pentium4e(), Context.IN_L2, "isamax", "ATLAS")
        assert r2.starred and r2.display_kernel == "isamax*"
