"""Tests for the ask/tell searcher protocol, the strategy registry,
the versioned serialization schema and the three-verb public facade.

The centerpiece is the golden-equivalence suite: the line search behind
the protocol must produce byte-identical SearchResults to the
pre-protocol implementation, proven against digests recorded before the
refactor (``tests/golden/linesearch_golden.json``) over the full
kernel x machine x context grid.
"""

import hashlib
import json
import pathlib

import pytest

import repro
from repro.errors import SearchError
from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import PrefetchHint
from repro.kernels import KERNEL_ORDER, get_kernel
from repro.machine import Context, pentium4e
from repro.search import (SEARCHERS, LineSearch, Searcher, SearchResult,
                          TuneConfig, TunedKernel, TuningSession,
                          build_space, make_searcher, searcher_names,
                          tune_kernel)
from repro.search.evalcache import eval_key
from repro.timing.timer import KernelTiming

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: the non-line strategies (line is covered by the golden suite)
SEEDED = ("random", "anneal", "genetic", "surrogate", "transfer")


# ---------------------------------------------------------------------------
# golden equivalence: the refactored line search is byte-identical

class TestLineSearchGolden:
    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(
            (GOLDEN_DIR / "linesearch_golden.json").read_text())

    @pytest.mark.parametrize("machine", ("p4e", "opteron"))
    def test_full_grid_matches_pre_refactor_results(self, golden, machine):
        """Every (kernel, context) point must reproduce the recorded
        best/start cycles bit-for-bit, the same winning parameters, the
        same budget charge and the same history — the proof that moving
        LineSearch behind the ask/tell protocol changed nothing."""
        sizes = {Context(c): n for c, n in golden["sizes"].items()}
        cfg = TuneConfig(run_tester=False, max_evals=golden["max_evals"])
        with TuningSession(cfg) as s:
            for kernel in KERNEL_ORDER:
                for ctx, n in sizes.items():
                    r = s.tune(kernel, machine, ctx, n).search
                    want = golden["grid"][f"{kernel}:{machine}:{ctx.value}:{n}"]
                    got = {
                        "best_cycles": repr(r.best_cycles),
                        "start_cycles": repr(r.start_cycles),
                        "n_evaluations": r.n_evaluations,
                        "best_params_key": repr(r.best_params.key()),
                        "phase_gains": {p: repr(g)
                                        for p, g in r.phase_gains.items()},
                        "history_sha256": hashlib.sha256(
                            repr(r.history).encode()).hexdigest(),
                        "n_history": len(r.history),
                    }
                    assert got == want, f"{kernel}:{machine}:{ctx.value}"


class TestEvalKeyGolden:
    def test_cache_key_unchanged_by_schema_versioning(self):
        """The persistent eval-cache key must stay byte-identical across
        the schema-field addition (it hashes params.key(), never
        to_dict), so warm caches stay warm."""
        golden = json.loads((GOLDEN_DIR / "evalkey_golden.json").read_text())
        p = TransformParams(
            sv=True, unroll=8, ae=4, wnt=True,
            prefetch={"X": PrefetchParams(PrefetchHint.NTA, 512),
                      "Y": PrefetchParams(PrefetchHint.T0, 1024)})
        k = eval_key("LOOP i = 0, N\n", "p4e", Context.OUT_OF_CACHE, 80000,
                     p.key(), "1.1.0")
        assert k == golden["digest"]


# ---------------------------------------------------------------------------
# the registry

class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(searcher_names()) >= {"line", "random", "anneal",
                                         "genetic", "exhaustive"}

    def test_make_searcher_builds_each(self, fko_p4e, p4e, ddot_src):
        a = fko_p4e.analyze(ddot_src)
        sp = build_space(a, p4e)
        start = fko_p4e.defaults(ddot_src)
        for name in searcher_names():
            s = make_searcher(name, sp, start, max_evals=10)
            assert isinstance(s, Searcher) and s.name == name

    def test_unknown_name_lists_valid_ones(self, fko_p4e, p4e, ddot_src):
        a = fko_p4e.analyze(ddot_src)
        sp = build_space(a, p4e)
        with pytest.raises(SearchError) as ei:
            make_searcher("bogus", sp, fko_p4e.defaults(ddot_src))
        msg = str(ei.value)
        assert "bogus" in msg
        for name in searcher_names():
            assert name in msg

    def test_config_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="line"):
            TuneConfig(strategy="hillclimb")

    def test_line_is_the_registered_linesearch(self):
        assert SEARCHERS["line"] is LineSearch


class TestConfigValidation:
    def test_negative_min_gain_rejected(self):
        with pytest.raises(ValueError, match="min_gain"):
            TuneConfig(min_gain=-0.01)

    def test_zero_min_gain_allowed(self):
        assert TuneConfig(min_gain=0.0).min_gain == 0.0

    @pytest.mark.parametrize("seed", (-1, 1.5, "7", True))
    def test_bad_seed_rejected(self, seed):
        with pytest.raises(ValueError, match="seed"):
            TuneConfig(seed=seed)


# ---------------------------------------------------------------------------
# the ask/tell protocol itself

class TestAskTellProtocol:
    @pytest.fixture(scope="class")
    def problem(self):
        p4e = pentium4e()
        fko = FKO(p4e)
        src = get_kernel("ddot").hil
        a = fko.analyze(src)
        return build_space(a, p4e), fko.defaults(src)

    def test_ask_returns_fresh_candidate_batches(self, problem):
        sp, start = problem
        s = make_searcher("random", sp, start, max_evals=10, seed=1)
        batch = s.ask()
        assert batch and all(isinstance(p, TransformParams) for p in batch)
        s.tell([(p, 100.0) for p in batch])
        # the told batch is charged (plus any pre-charged follow-up ask)
        assert len(batch) <= s.n_evaluations <= s.max_evals

    def test_tell_length_mismatch_rejected(self, problem):
        sp, start = problem
        s = make_searcher("random", sp, start, max_evals=10, seed=1)
        batch = s.ask()
        with pytest.raises(SearchError):
            s.tell([(batch[0], 100.0)] * (len(batch) + 1))

    def test_tell_accepts_bare_cycles(self, problem):
        sp, start = problem
        s = make_searcher("random", sp, start, max_evals=6, seed=1)
        while not s.finished:
            s.tell([50.0] * len(s.ask()))
        assert s.result().best_cycles == 50.0

    def test_result_before_finish_raises(self, problem):
        sp, start = problem
        s = make_searcher("random", sp, start, max_evals=10, seed=1)
        s.ask()
        with pytest.raises(SearchError):
            s.result()

    def test_ask_after_finish_raises(self, problem):
        sp, start = problem
        s = make_searcher("random", sp, start, max_evals=2, seed=1)
        while not s.finished:
            s.tell([100.0] * len(s.ask()))
        with pytest.raises(SearchError):
            s.ask()

    def test_budget_charged_in_ask_order(self, problem):
        """The over-budget tail of an asked batch is charged inf and
        never evaluated — the invariant that makes jobs=N identical."""
        sp, start = problem
        s = make_searcher("random", sp, start, max_evals=3, seed=1)
        seen = []

        def ev(params):
            seen.append(params.key())
            return 100.0

        res = s.run(ev)
        assert res.n_evaluations <= 3
        assert len(seen) <= 3


# ---------------------------------------------------------------------------
# determinism: same seed => identical results, serial == parallel

N_OOC = 8000
EVALS = 24


def _tune(strategy, seed=3, jobs=1, kernel="dasum"):
    cfg = TuneConfig(strategy=strategy, seed=seed, jobs=jobs,
                     max_evals=EVALS, run_tester=False)
    return tune_kernel(get_kernel(kernel), pentium4e(),
                       Context.OUT_OF_CACHE, N_OOC, config=cfg)


class TestStrategyDeterminism:
    @pytest.mark.parametrize("strategy", SEEDED)
    def test_same_seed_identical_result(self, strategy):
        a = _tune(strategy).search.to_dict()
        b = _tune(strategy).search.to_dict()
        assert a == b   # includes full history, not just the winner

    @pytest.mark.parametrize("strategy", SEEDED)
    def test_different_seed_changes_proposals(self, strategy):
        a = _tune(strategy, seed=3).search
        b = _tune(strategy, seed=4).search
        assert [k for _, k, _ in a.history] != [k for _, k, _ in b.history]

    @pytest.mark.parametrize("strategy", ("line",) + SEEDED)
    def test_jobs4_bit_identical_to_serial(self, strategy):
        serial = _tune(strategy, jobs=1).search.to_dict()
        parallel = _tune(strategy, jobs=4).search.to_dict()
        assert serial == parallel


# ---------------------------------------------------------------------------
# versioned serialization

class TestSchema:
    def test_payloads_carry_schema_1(self):
        tk = _tune("line")
        d = tk.to_dict()
        assert d["schema"] == 1
        assert d["params"]["schema"] == 1
        assert d["timing"]["schema"] == 1
        assert d["search"]["schema"] == 1

    def test_missing_schema_reads_as_1(self):
        tk = _tune("line")
        d = tk.to_dict()
        for payload in (d, d["params"], d["timing"], d["search"]):
            payload.pop("schema")
        again = TunedKernel.from_dict(d)
        assert again.params.key() == tk.params.key()
        assert again.timing.cycles == tk.timing.cycles

    @pytest.mark.parametrize("cls,maker", [
        (TransformParams, lambda: TransformParams().to_dict()),
        (KernelTiming, lambda: KernelTiming(
            1.0, 1.0, 1.0, 8, "p4e", Context.OUT_OF_CACHE).to_dict()),
    ])
    def test_future_schema_rejected(self, cls, maker):
        d = maker()
        d["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            cls.from_dict(d)

    def test_search_result_roundtrip_with_schema(self):
        r = _tune("random").search
        again = SearchResult.from_dict(r.to_dict())
        assert again.to_dict() == r.to_dict()


# ---------------------------------------------------------------------------
# the three-verb facade

class TestFacade:
    def test_exports(self):
        for name in ("tune", "compile", "analyze"):
            assert name in repro.__all__
            assert callable(getattr(repro, name))

    def test_analyze_by_name(self):
        a = repro.analyze("ddot")
        assert list(a.prefetch_arrays) == ["X", "Y"]

    def test_compile_is_fko_defaults(self):
        tk = repro.compile("ddot", "p4e", "out-of-cache", n=N_OOC)
        d = FKO(pentium4e()).defaults(get_kernel("ddot").hil)
        assert tk.params.key() == d.key()
        assert tk.search is None

    def test_tune_with_option_keywords(self):
        tk = repro.tune("dasum", "p4e", Context.OUT_OF_CACHE, n=N_OOC,
                        max_evals=EVALS, run_tester=False,
                        strategy="random", seed=3)
        assert tk.search.n_evaluations <= EVALS

    def test_tune_matches_tune_kernel(self):
        via_facade = repro.tune("dasum", "p4e", n=N_OOC, max_evals=EVALS,
                                run_tester=False)
        direct = _tune("line")
        assert (via_facade.search.to_dict() == direct.search.to_dict())

    def test_config_and_keywords_conflict(self):
        with pytest.raises(TypeError, match="config"):
            repro.tune("ddot", config=TuneConfig(), max_evals=5)
