"""Tests for the surrogate and transfer strategies and their support
layers: the generic feature encoding on :class:`SearchSpace`, the
warm-start neighbor lookup with wire-schema canonicalization, and the
crash-proofed curves/perf-diff reporting.

The determinism suite here complements ``test_strategies.py`` (which
already races every seeded strategy through the jobs=1 vs jobs=N
bit-identity and same-seed parametrizations, now including
``surrogate`` and ``transfer``): the golden ask-stream digest below
pins the surrogate's exact proposal sequence, so an accidental change
to the mirror rng, the model rng split, the EI tie-break or the
batch composition shows up as a digest mismatch, not a silent quality
drift.
"""

import hashlib
import json
import math
import os
import subprocess
import sys

import pytest

from repro import cli
from repro.errors import SearchError
from repro.fko import TransformParams
from repro.machine import Context
from repro.obs import aggregate_curves, collect_curves
from repro.obs.perfdiff import diff_metrics, render_diff
from repro.search import (SearchSpace, TuneConfig, build_space,
                          lookup_warm_start, make_searcher, searcher_names,
                          split_strategy, tune_kernel, valid_strategy,
                          write_warm_entry)
from repro.search.space import dim_get
from repro.service import TuneRequest

from .conftest import DDOT_SRC


@pytest.fixture
def ddot_space(fko_p4e, p4e, ddot_src):
    a = fko_p4e.analyze(ddot_src)
    return build_space(a, p4e), fko_p4e.defaults(ddot_src)


def _fake_cycles(params):
    """Deterministic pseudo-cycles, independent of dict/set ordering."""
    h = hashlib.sha256(repr(params.key()).encode()).digest()
    return 1000.0 + int.from_bytes(h[:6], "big") % 100000


def _drive(searcher):
    asked = []
    while not searcher.finished:
        batch = searcher.ask()
        asked.extend(p.key() for p in batch)
        searcher.tell([(p, _fake_cycles(p)) for p in batch])
    return asked, searcher.result()


# ---------------------------------------------------------------------------
# feature encoding

class TestEncoding:
    def test_one_feature_per_declared_dimension_in_order(self, ddot_space):
        sp, start = ddot_space
        x = sp.encode(start)
        assert len(x) == len(sp.dimensions)
        assert all(0.0 <= v <= 1.0 for v in x)
        # flipping exactly one dimension moves exactly that coordinate
        for i, dim in enumerate(sp.dimensions):
            if len(dim.options) < 2:
                continue
            cur = dim_get(start, dim.name)
            other = next(o for o in dim.options if o != cur)
            from repro.search.space import dim_set
            y = sp.encode(dim_set(start, dim.name, other))
            changed = [j for j in range(len(x)) if x[j] != y[j]]
            assert changed == [i], dim.name
            break
        else:
            pytest.skip("space has no multi-option dimension")

    def test_null_erased_ext_encodes_like_absent(self, ddot_space):
        sp, start = ddot_space
        absent = start.copy()
        erased = start.copy()
        # a store round-trip can hand back an explicit zero entry where
        # with_ext would have dropped the key entirely; dim_get folds
        # both to the same value, so the encodings must be identical
        erased.ext = dict(erased.ext)
        erased.ext["tile:j"] = 0
        assert sp.encode(absent) == sp.encode(erased)

    def test_off_grid_value_snaps_to_nearest_option(self):
        sp = SearchSpace(sv_options=[False], wnt_options=[False],
                         unroll_options=[1, 2, 4, 8], ae_options=[1],
                         prefetch_arrays=[], hint_options=[],
                         dist_options=[0], line=64)
        i = next(j for j, d in enumerate(sp.dimensions)
                 if d.name == "unroll")
        # 3 is off the grid, equidistant from 2 and 4: the lower
        # option index wins, so the snap is deterministic
        off = sp.encode(TransformParams(unroll=3))[i]
        assert off == sp.encode(TransformParams(unroll=2))[i]
        assert off != sp.encode(TransformParams(unroll=4))[i]

    def test_encoding_digest_stable_across_processes(self, ddot_space):
        sp, start = ddot_space
        here = hashlib.sha256(repr(sp.encode(start)).encode()).hexdigest()
        prog = (
            "import hashlib\n"
            "from repro.fko import FKO\n"
            "from repro.machine import pentium4e\n"
            "from repro.search import build_space\n"
            "src = %r\n"
            "p4e = pentium4e()\n"
            "fko = FKO(p4e)\n"
            "sp = build_space(fko.analyze(src), p4e)\n"
            "x = sp.encode(fko.defaults(src))\n"
            "print(hashlib.sha256(repr(x).encode()).hexdigest())\n"
        ) % DDOT_SRC
        env = dict(os.environ)
        src_dir = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"   # must not matter
        out = subprocess.run([sys.executable, "-c", prog], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == here

    def test_distance_is_zero_on_self_and_symmetric(self, ddot_space):
        import numpy as np
        from repro.search.strategies import _random_point
        sp, start = ddot_space
        other = _random_point(sp, np.random.default_rng(1))
        assert sp.distance(start, start) == 0.0
        assert sp.distance(start, other) == sp.distance(other, start)

    def test_project_keeps_on_grid_values_and_fills_off_grid(self,
                                                             ddot_space):
        sp, start = ddot_space
        projected = sp.project(start)
        for dim in sp.dimensions:
            assert dim_get(projected, dim.name) in dim.options
        # an off-grid unroll falls back to the start's value
        from repro.search.space import dim_set
        weird = dim_set(start, "unroll", 999) \
            if any(d.name == "unroll" for d in sp.dimensions) else None
        if weird is not None:
            back = sp.project(weird, fallback=start)
            assert dim_get(back, "unroll") == dim_get(start, "unroll")


# ---------------------------------------------------------------------------
# the surrogate strategy

class TestSurrogate:
    #: sha256 over the exact key sequence the surrogate asks for on the
    #: ddot space (p4e, max_evals=32, seed=7) against the _fake_cycles
    #: evaluator — regenerate only for a *deliberate* proposal change
    GOLDEN_ASK_DIGEST = ("34b893ed310a2fe56eafe7dd582ffbdb"
                         "0cd9efc98ca50c2c4ee8ddf99086adb2")

    def test_golden_seeded_ask_stream(self, ddot_space):
        sp, start = ddot_space
        s = make_searcher("surrogate", sp, start, max_evals=32, seed=7)
        asked, res = _drive(s)
        assert res.n_evaluations == 32
        digest = hashlib.sha256(repr(asked).encode()).hexdigest()
        assert digest == self.GOLDEN_ASK_DIGEST

    def test_explore_prefix_mirrors_random_stream(self, ddot_space):
        sp, start = ddot_space
        sur, _ = _drive(make_searcher("surrogate", sp, start,
                                      max_evals=40, seed=5))
        rnd, _ = _drive(make_searcher("random", sp, start,
                                      max_evals=40, seed=5))
        n_explore = int(40 * 0.8)
        common = 0
        for a, b in zip(sur, rnd):
            if a != b:
                break
            common += 1
        assert common >= n_explore

    def test_ask_batch_is_stable_permutation_charged_once(self,
                                                          ddot_space):
        sp, start = ddot_space
        s = make_searcher("surrogate", sp, start, max_evals=24, seed=2)
        s.tell([(p, _fake_cycles(p)) for p in s.ask()])   # start point
        flat = s.ask()
        assert len(flat) > 1
        charged = s.n_evaluations
        groups = s.ask_batch(limit=3)
        # a pure evaluation hint: same multiset, nothing re-charged,
        # same grouping on a second call
        assert sorted(p.key() for g in groups for p in g) \
            == sorted(p.key() for p in flat)
        assert all(len(g) <= 3 for g in groups)
        assert s.n_evaluations == charged
        assert [[p.key() for p in g] for g in s.ask_batch(limit=3)] \
            == [[p.key() for p in g] for g in groups]
        s.tell([(p, _fake_cycles(p)) for p in flat])      # still ask order
        # telling never re-charges the told batch: only the next ask's
        # fresh candidates account for the budget delta
        if not s.finished:
            assert s.n_evaluations == charged + len(s.ask())

    def test_bag_must_be_positive(self, ddot_space):
        sp, start = ddot_space
        with pytest.raises(SearchError, match="bag"):
            make_searcher("surrogate", sp, start, bag=0)


# ---------------------------------------------------------------------------
# the transfer wrapper and the strategy-name grammar

class TestTransfer:
    def test_split_and_validate_compound_names(self):
        assert split_strategy("surrogate") == ("surrogate", None)
        assert split_strategy("transfer") == ("transfer", None)
        assert split_strategy("transfer:genetic") == ("transfer", "genetic")
        assert valid_strategy("transfer:genetic")
        assert not valid_strategy("transfer:transfer")
        assert not valid_strategy("transfer:bogus")
        assert not valid_strategy("surrogate:genetic")
        assert {"surrogate", "transfer"} <= set(searcher_names())

    def test_config_and_wire_accept_new_strategies(self):
        for name in ("surrogate", "transfer", "transfer:genetic"):
            assert TuneConfig(strategy=name).strategy == name
            assert TuneRequest(kernel="ddot", strategy=name).digest()
        with pytest.raises(ValueError):
            TuneConfig(strategy="transfer:nope")

    def test_warm_candidates_evaluated_right_after_start(self,
                                                         ddot_space):
        sp, start = ddot_space
        from repro.search.space import dim_set
        cur = dim_get(start, "unroll")
        warm = dim_set(start, "unroll", 4 if cur != 4 else 2)
        s = make_searcher("transfer", sp, start, max_evals=16, seed=0,
                          warm=[warm], warm_source="test")
        asked, res = _drive(s)
        assert asked[0] == start.key()
        assert asked[1] == warm.key()
        assert res.n_evaluations == 16
        assert any(phase == "warm" for phase, _, _ in res.history)
        assert res.best_cycles <= _fake_cycles(warm)

    def test_transfer_spends_full_budget(self, ddot_space):
        sp, start = ddot_space
        for inner in ("surrogate", "genetic", "random"):
            s = make_searcher(f"transfer:{inner}", sp, start,
                              max_evals=20, seed=1)
            _, res = _drive(s)
            assert res.n_evaluations == 20, inner


# ---------------------------------------------------------------------------
# warm-start lookup: wire-schema canonicalization

class TestWarmStartLookup:
    def test_two_spellings_one_neighbor(self, tmp_path):
        """The satellite regression: a result stored under the
        TunedKernel spelling (``"P4E"``, enum context, explicit paper
        N) must be found by a query in the wire spelling (``"p4e"``,
        CLI short form, defaulted N) — and vice versa."""
        store = tmp_path / "store"
        p = TransformParams(unroll=4)
        write_warm_entry(store, kernel="ddot", machine="P4E",
                         context=Context.OUT_OF_CACHE, n=80000,
                         params=p, cycles=123.0)
        warm, source = lookup_warm_start(store, "ddot", "p4e", "oc",
                                         n=None)
        assert [w.key() for w in warm] == [p.key()]
        assert source == "ddot:p4e:out-of-cache:80000"
        # and the reverse spelling on the query side
        warm2, _ = lookup_warm_start(store, "ddot", "P4E",
                                     Context.OUT_OF_CACHE, n=80000)
        assert [w.key() for w in warm2] == [p.key()]

    def test_nearest_neighbor_ranking(self, tmp_path):
        store = tmp_path / "store"
        exact = TransformParams(unroll=8)
        cousin = TransformParams(unroll=2)
        write_warm_entry(store, kernel="ddot", machine="p4e",
                         context="out-of-cache", n=80000,
                         params=exact, cycles=50.0)
        write_warm_entry(store, kernel="dasum", machine="p4e",
                         context="out-of-cache", n=80000,
                         params=cousin, cycles=10.0)
        warm, source = lookup_warm_start(store, "ddot", "p4e",
                                         "out-of-cache", n=80000, k=2)
        assert warm[0].key() == exact.key()    # same kernel outranks
        assert source.startswith("ddot:")

    def test_every_context_value_round_trips_through_parse(self):
        """The regression behind half the warm store going invisible:
        ``parse_context`` rejected ``Context.IN_L2.value`` itself
        (``"in-L2-cache"``), the exact spelling stored results record —
        so every in-L2 entry silently failed to canonicalize."""
        from repro.service import parse_context
        for ctx in Context:
            assert parse_context(ctx.value) is ctx
            assert parse_context(ctx.value.lower()) is ctx

    def test_in_l2_entry_found_under_enum_value_spelling(self, tmp_path):
        store = tmp_path / "store"
        p = TransformParams(unroll=2)
        write_warm_entry(store, kernel="dasum", machine="opteron",
                         context=Context.IN_L2, n=1024,
                         params=p, cycles=9.0)
        warm, source = lookup_warm_start(store, "dasum", "opteron",
                                         "in-L2-cache", n=1024)
        assert [w.key() for w in warm] == [p.key()]
        assert source == "dasum:opteron:in-L2-cache:1024"

    def test_missing_store_is_empty_not_an_error(self, tmp_path):
        warm, source = lookup_warm_start(tmp_path / "nope", "ddot",
                                         "p4e", "oc")
        assert warm == [] and source == ""

    def test_malformed_entries_are_skipped(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "junk.json").write_text("{not json")
        (store / "wrong.json").write_text(json.dumps({"schema": 1}))
        warm, source = lookup_warm_start(store, "ddot", "p4e", "oc")
        assert warm == [] and source == ""

    def test_engine_wraps_strategy_and_traces_warm_start(self, tmp_path):
        from repro.kernels import get_kernel
        from repro.machine import pentium4e
        store = tmp_path / "store"
        trace = tmp_path / "trace.jsonl"
        seeded = tune_kernel(
            get_kernel("dasum"), pentium4e(), Context.OUT_OF_CACHE, 8000,
            config=TuneConfig(strategy="random", seed=0, max_evals=8,
                              run_tester=False))
        write_warm_entry(store, kernel="dasum", machine="P4E",
                         context=Context.OUT_OF_CACHE, n=8000,
                         params=seeded.search.best_params,
                         cycles=seeded.search.best_cycles)
        tk = tune_kernel(
            get_kernel("dasum"), pentium4e(), Context.OUT_OF_CACHE, 8000,
            config=TuneConfig(strategy="random", seed=0, max_evals=8,
                              run_tester=False, warm_start=str(store),
                              trace=str(trace)))
        events = [json.loads(line) for line in
                  trace.read_text().splitlines()]
        warm_events = [e for e in events if e.get("event") == "warm-start"]
        assert warm_events and warm_events[0]["candidates"] >= 1
        starts = [e for e in events if e.get("event") == "job-start"]
        assert starts[0]["strategy"] == "transfer:random"
        # warm-started from random's own best: can never do worse
        assert tk.search.best_cycles <= seeded.search.best_cycles


# ---------------------------------------------------------------------------
# crash-proofed reporting

class TestReportingRobustness:
    def test_curve_event_only_trace_aggregates(self):
        events = [
            {"event": "job-start", "job": "j", "strategy": "random",
             "seed": 0},
            {"event": "curve", "job": "j", "evaluations": 4,
             "best_cycles": 100.0},
            {"event": "curve", "job": "j", "evaluations": 8,
             "best_cycles": 80.0},
            {"event": "job-end", "job": "j"},
        ]
        curves = collect_curves(events)
        (entry,) = curves.values()
        assert entry["evaluations"] == 8
        assert entry["best_cycles"] == 80.0
        agg = aggregate_curves(curves)
        assert agg["checkpoints"]
        row = agg["strategies"]["random"]["ratio_of_best"]
        assert row[8] == 1.0

    def test_infinite_best_cycles_never_poisons_aggregate(self):
        events = [
            {"event": "job-start", "job": "j", "strategy": "anneal",
             "seed": 0},
            {"event": "curve", "job": "j", "evaluations": 2,
             "best_cycles": float("inf")},
            {"event": "curve", "job": "j", "evaluations": 4,
             "best_cycles": 50.0},
        ]
        curves = collect_curves(events)
        (entry,) = curves.values()
        assert entry["best_cycles"] == 50.0
        agg = aggregate_curves(curves)
        for row in agg["strategies"].values():
            for v in row["ratio_of_best"].values():
                assert v is None or math.isfinite(v)

    def test_cli_curves_eventless_trace_exits_zero(self, tmp_path,
                                                   capsys):
        path = tmp_path / "noise.jsonl"
        path.write_text(json.dumps({"event": "meta", "schema": 2}) + "\n")
        assert cli.main(["curves", str(path)]) == 0
        assert "no convergence data" in capsys.readouterr().out

    def test_perfdiff_disjoint_artifacts_report_no_data(self):
        report = diff_metrics({"a": 1.0}, {"b": 2.0})
        assert report["rows"] == [] and report["regressions"] == []
        text = render_diff(report)
        assert "no data" in text
        assert "only-old: 1" in text and "only-new: 1" in text
