"""The HIL cache-blocking pass: nest discovery, stride algebra, and
source-to-source tiling correctness (tiled programs must compute
exactly what the original computes, for every ragged edge)."""

from __future__ import annotations

import pytest

from repro.fko import FKO, TransformParams
from repro.hil.tiling import (NestInfo, TilingError, apply_tiling,
                              find_nest, nest_info, tiled_source, unparse)
from repro.kernels import get_kernel
from repro.timing.tester import test_function as check_function


@pytest.fixture(scope="module")
def gemm_spec():
    return get_kernel("dgemm")


# ---------------------------------------------------------------------------
# nest discovery

class TestFindNest:
    def test_gemm_nest_shape(self, gemm_spec):
        nest = find_nest(gemm_spec.hil)
        assert isinstance(nest, NestInfo)
        assert nest.extent == "N"
        assert nest.ivars == ("i", "k", "j")
        assert nest.pointers == {"A": 8, "B": 8, "C": 8}
        assert nest.stored == ("C",)
        assert set(nest.loaded) == {"A", "B", "C"}

    def test_gemm_stride_polynomials(self, gemm_spec):
        # row-major C += A @ B, j-inner: per full iteration of each
        # index, the net pointer movement in elements at extent n=4
        strides = find_nest(gemm_spec.hil).strides_at(4)
        assert strides["A"] == {"i": 4, "k": 1, "j": 0}
        assert strides["B"] == {"i": 0, "k": 4, "j": 1}
        assert strides["C"] == {"i": 4, "k": 0, "j": 1}

    def test_single_loop_kernels_have_no_nest(self):
        for name in ("ddot", "dasum", "idamax", "dstencil3", "dsumsq"):
            assert find_nest(get_kernel(name).hil) is None

    def test_unparse_round_trips_the_nest(self, gemm_spec):
        nest = find_nest(gemm_spec.hil)
        again = find_nest(unparse(nest.routine))
        assert again is not None
        assert again.ivars == nest.ivars
        assert again.strides_at(7) == nest.strides_at(7)

    def test_nest_info_is_memoized(self, gemm_spec):
        assert nest_info(gemm_spec.hil) is nest_info(gemm_spec.hil)


# ---------------------------------------------------------------------------
# the tiling transform

class TestApplyTiling:
    def test_no_tiles_is_identity(self, gemm_spec):
        assert tiled_source(gemm_spec.hil, {}) is gemm_spec.hil
        assert tiled_source(gemm_spec.hil, {"i": 0}) is gemm_spec.hil

    def test_unknown_ivar_is_identity(self, gemm_spec):
        assert tiled_source(gemm_spec.hil, {"z": 8}) == gemm_spec.hil

    def test_non_nest_source_is_identity(self):
        src = get_kernel("ddot").hil
        assert tiled_source(src, {"i": 8}) == src

    def test_tiled_source_still_a_nest(self, gemm_spec):
        tiled = apply_tiling(gemm_spec.hil, {"k": 4})
        assert tiled != gemm_spec.hil
        assert "LOOP kT = 0, N, 4" in tiled

    @pytest.mark.parametrize("tiles", [
        {"k": 4},
        {"j": 5},
        {"i": 3},
        {"k": 4, "j": 4},
        {"i": 3, "k": 5, "j": 2},
    ])
    def test_tiled_gemm_computes_the_same_thing(self, p4e, gemm_spec,
                                                tiles):
        # ragged edges included: GEMM_TEST_SIZES are mostly not
        # multiples of the tile sizes
        params = TransformParams()
        for v, t in tiles.items():
            params = params.with_ext(f"tile:{v}", t)
        compiled = FKO(p4e).compile(gemm_spec.hil, params,
                                    debug_verify=True)
        check_function(compiled.fn, gemm_spec)

    def test_tiling_composes_with_inner_transforms(self, p4e, gemm_spec):
        params = TransformParams(sv=True, unroll=4, ae=2) \
            .with_ext("tile:k", 4).with_ext("tile:j", 5)
        compiled = FKO(p4e).compile(gemm_spec.hil, params,
                                    debug_verify=True)
        check_function(compiled.fn, gemm_spec)

    def test_generated_name_collision_is_refused(self):
        src = """
ROUTINE collide(N: int, A: ptr double, B: ptr double);
double t;
double klen;
LOOP k = 0, N
LOOP_BODY
    @TUNE
    LOOP j = 0, N
    LOOP_BODY
        t = A[0];
        B[0] = t;
        A += 1;
        B += 1;
    LOOP_END
    A -= N;
    B -= N;
LOOP_END
"""
        assert find_nest(src) is not None
        with pytest.raises(TilingError):
            apply_tiling(src, {"k": 4})
