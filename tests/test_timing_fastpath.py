"""Golden equivalence suite for the timing model's steady-state fast path.

The fast path (``LoopTimer(fast=True)``, the default) detects when the
per-line simulation state repeats and replays the recorded period's
cycle deltas instead of re-stepping every line.  The replay performs
the same float additions in the same order as the full walk, so the
contract is *exact*: ``fast=True`` and ``fast=False`` must agree to the
bit on every kernel, machine, context and transform setting — not
approximately, bit-for-bit.  These tests enforce that contract; if they
fail, the eval cache (keyed without a fast/slow discriminator) would be
silently corrupted.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fko import FKO, PrefetchParams, TransformParams
from repro.ir import PrefetchHint
from repro.kernels import KERNEL_ORDER, get_kernel
from repro.machine import Context, LoopTimer, summarize

# The bench/equivalence N: large enough that the out-of-cache walk has a
# long steady region (the acceptance criterion's N).
N_LARGE = 80000
N_SMALL = 1000


def _params_grid(spec):
    """A representative UR/PF/AE slice of the transform space."""
    arrs = list(spec.vector_args)
    grid = [
        TransformParams(),
        TransformParams(sv=True, unroll=4, ae=2),
        TransformParams(sv=True, unroll=8, ae=4),
        TransformParams(sv=False, unroll=2, lc=False),
    ]
    if arrs:
        pf = {a: PrefetchParams(PrefetchHint.NTA, 512) for a in arrs}
        grid.append(TransformParams(sv=True, unroll=8, ae=4, prefetch=pf))
        pf0 = {arrs[0]: PrefetchParams(PrefetchHint.T0, 1024)}
        grid.append(TransformParams(sv=True, unroll=4, prefetch=pf0))
    if spec.output_args:
        grid.append(TransformParams(sv=True, unroll=4, wnt=True))
    return grid


def _both(mach, context, summary, n):
    fast = LoopTimer(mach, context, fast=True).time(summary, n)
    slow = LoopTimer(mach, context, fast=False).time(summary, n)
    return fast, slow


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
@pytest.mark.parametrize("machine", ["p4e", "opt"])
@pytest.mark.parametrize("context", [Context.OUT_OF_CACHE, Context.IN_L2])
def test_fast_equals_full_walk(kernel, machine, context, request):
    """Exact cycle equality, every kernel x machine x context x params."""
    mach = request.getfixturevalue(machine)
    spec = get_kernel(kernel)
    fko = FKO(mach)
    for params in _params_grid(spec):
        summary = summarize(fko.compile(spec.hil, params).fn)
        for n in (N_SMALL, N_LARGE):
            fast, slow = _both(mach, context, summary, n)
            assert fast.cycles == slow.cycles, (
                f"{kernel}/{mach.name}/{context.value}/n={n}/{params.key()}:"
                f" fast={fast.cycles!r} slow={slow.cycles!r}")
            # the replay must also reproduce the walk's event counters
            assert fast.stats.demand_misses == slow.stats.demand_misses
            assert fast.stats.hw_prefetches == slow.stats.hw_prefetches
            assert fast.stats.prefetch_issued == slow.stats.prefetch_issued


@pytest.mark.parametrize("machine", ["p4e", "opt"])
def test_extrapolation_actually_fires_at_large_n(machine, request):
    """At N=80000 out-of-cache the steady state must be found — the
    speedup claim rests on most lines being replayed, not stepped."""
    mach = request.getfixturevalue(machine)
    spec = get_kernel("ddot")
    summary = summarize(
        FKO(mach).compile(spec.hil,
                          TransformParams(sv=True, unroll=8, ae=4)).fn)
    res = LoopTimer(mach, Context.OUT_OF_CACHE, fast=True).time(
        summary, N_LARGE)
    assert res.stats.lines_extrapolated > 0
    assert res.stats.steady_period > 0
    # the overwhelming majority of lines must come from the replay
    assert res.stats.lines_extrapolated > res.stats.lines_processed * 0.8


def test_slow_path_reports_no_extrapolation(p4e):
    spec = get_kernel("ddot")
    summary = summarize(FKO(p4e).compile(spec.hil).fn)
    res = LoopTimer(p4e, Context.OUT_OF_CACHE, fast=False).time(
        summary, N_LARGE)
    assert res.stats.lines_extrapolated == 0
    assert res.stats.steady_period == 0


def test_timer_fast_flag_passthrough(p4e):
    """Timer(fast=...) must reach the underlying LoopTimer."""
    from repro.timing.timer import Timer
    t_fast = Timer(p4e, Context.OUT_OF_CACHE, N_LARGE)
    t_slow = Timer(p4e, Context.OUT_OF_CACHE, N_LARGE, fast=False)
    assert t_fast._loop_timer.fast is True
    assert t_slow._loop_timer.fast is False
    spec = get_kernel("dasum")
    k = FKO(p4e).compile(spec.hil, TransformParams(sv=True, unroll=4))
    tf = t_fast.time(k, spec)
    ts = t_slow.time(k, spec)
    assert tf.cycles == ts.cycles
    assert tf.raw.stats.lines_extrapolated > 0
    assert ts.raw.stats.lines_extrapolated == 0


# ---------------------------------------------------------------------------
# randomized sweep: hypothesis drives TransformParams through corners the
# hand-written grid misses (odd unrolls, mixed hints, wnt interplay)

_HINTS = st.sampled_from([None, PrefetchHint.NTA, PrefetchHint.T0,
                          PrefetchHint.T1])


@st.composite
def _random_params(draw):
    pf = {}
    for arr in ("X", "Y"):
        hint = draw(_HINTS)
        if hint is not None:
            dist = draw(st.integers(min_value=1, max_value=32)) * 64
            pf[arr] = PrefetchParams(hint, dist)
    return TransformParams(
        sv=draw(st.booleans()),
        unroll=draw(st.integers(min_value=1, max_value=16)),
        lc=draw(st.booleans()),
        ae=draw(st.integers(min_value=1, max_value=4)),
        prefetch=pf,
        wnt=draw(st.booleans()),
        block_fetch=draw(st.booleans()),
    )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(params=_random_params(),
       kernel=st.sampled_from(["daxpy", "dcopy", "ddot", "dscal"]),
       n=st.integers(min_value=1, max_value=6000))
def test_fast_equals_full_walk_randomized(params, kernel, n):
    from repro.machine import opteron, pentium4e
    spec = get_kernel(kernel)
    for mach in (pentium4e(), opteron()):
        summary = summarize(FKO(mach).compile(spec.hil, params).fn)
        for context in (Context.OUT_OF_CACHE, Context.IN_L2):
            fast, slow = _both(mach, context, summary, n)
            assert fast.cycles == slow.cycles, (
                f"{kernel}/{mach.name}/{context.value}/n={n}: "
                f"fast={fast.cycles!r} slow={slow.cycles!r}")
