"""Tests for the timer (min-of-6 protocol) and the tester."""

import numpy as np
import pytest

from repro.errors import KernelTestFailure
from repro.fko import FKO, TransformParams
from repro.ir import Imm, Instruction, Opcode
from repro.kernels import get_kernel
from repro.machine import Context, summarize
from repro.timing import Timer, paper_n
from repro.timing.tester import DEFAULT_SIZES, make_inputs
from repro.timing.tester import test_function as check_function


class TestTimer:
    def test_min_of_six(self, p4e, ddot_spec):
        k = FKO(p4e).compile(ddot_spec.hil, TransformParams(sv=True))
        t = Timer(p4e, Context.OUT_OF_CACHE, 20000)
        res = t.time(k, ddot_spec)
        assert len(res.samples) == 6
        assert res.cycles == min(res.samples)

    def test_deterministic(self, p4e, ddot_spec):
        k = FKO(p4e).compile(ddot_spec.hil, TransformParams(sv=True))
        t = Timer(p4e, Context.OUT_OF_CACHE, 20000)
        assert t.time(k, ddot_spec).cycles == t.time(k, ddot_spec).cycles

    def test_noise_is_multiplicative_and_small(self, p4e, ddot_spec):
        k = FKO(p4e).compile(ddot_spec.hil, TransformParams(sv=True))
        t = Timer(p4e, Context.OUT_OF_CACHE, 20000)
        res = t.time(k, ddot_spec)
        spread = (max(res.samples) - min(res.samples)) / min(res.samples)
        assert 0 <= spread < 0.05

    def test_mflops_uses_table1_flops(self, p4e):
        spec = get_kernel("dcopy")    # "no floating point computation"
        k = FKO(p4e).compile(spec.hil, TransformParams(sv=True))
        t = Timer(p4e, Context.OUT_OF_CACHE, 20000)
        res = t.time(k, spec)
        expected = spec.flops(20000) / res.seconds / 1e6
        assert res.mflops == pytest.approx(expected)

    def test_paper_problem_sizes(self):
        assert paper_n(Context.OUT_OF_CACHE) == 80000
        assert paper_n(Context.IN_L2) == 1024


class TestTester:
    def test_accepts_correct_kernel(self, p4e, ddot_spec):
        k = FKO(p4e).compile(ddot_spec.hil, TransformParams(sv=True))
        check_function(k.fn, ddot_spec)

    def test_catches_wrong_scalar_result(self, p4e, ddot_spec):
        k = FKO(p4e).compile(ddot_spec.hil, TransformParams(sv=False))
        # sabotage: turn the accumulate into a subtract
        for block in k.fn.blocks:
            for instr in block.instrs:
                if instr.op is Opcode.FADD:
                    instr.op = Opcode.FSUB
        with pytest.raises(KernelTestFailure):
            check_function(k.fn, ddot_spec)

    def test_catches_wrong_array_output(self, p4e):
        spec = get_kernel("dscal")
        k = FKO(p4e).compile(spec.hil, TransformParams(sv=False, unroll=1))
        # sabotage: double the pointer stride so odd elements are skipped
        for block in k.fn.blocks:
            for instr in block.instrs:
                if instr.op is Opcode.ADD and isinstance(instr.srcs[1], Imm) \
                        and instr.srcs[1].value == 8:
                    instr.srcs = (instr.srcs[0], Imm(16))
        with pytest.raises(Exception):   # fault or wrong output
            check_function(k.fn, spec)

    def test_catches_wrong_index(self, p4e):
        spec = get_kernel("idamax")
        k = FKO(p4e).compile(spec.hil, TransformParams(sv=False))
        # sabotage: flip the comparison so it tracks the minimum
        from repro.ir import Cond
        for block in k.fn.blocks:
            for instr in block.instrs:
                if instr.cond is Cond.GT:
                    instr.cond = Cond.LT
        with pytest.raises(KernelTestFailure, match="index"):
            check_function(k.fn, spec)

    def test_one_ulp_array_error_is_caught(self, p4e, monkeypatch):
        # element-wise outputs must match bitwise: a 1-ulp error used to
        # slip through the old rtol = eps*32 vector check
        import repro.timing.tester as tester_mod
        spec = get_kernel("dscal")
        k = FKO(p4e).compile(spec.hil, TransformParams(sv=False))
        real_run = tester_mod.run_function

        def perturbed(fn, arrays, scalars=None, **kw):
            result = real_run(fn, arrays, scalars, **kw)
            if len(arrays["X"]) and scalars.get("N"):
                arrays["X"][0] = np.nextafter(arrays["X"][0], np.inf)
            return result

        monkeypatch.setattr(tester_mod, "run_function", perturbed)
        with pytest.raises(KernelTestFailure, match="bitwise"):
            check_function(k.fn, spec, sizes=(8,))

    def test_reduction_fed_output_uses_real_n_tolerance(self, p4e,
                                                        monkeypatch):
        # the same 1-ulp perturbation is legal on an output declared
        # reduction-fed (association-tolerant, scaled by the real N)
        import dataclasses
        import repro.timing.tester as tester_mod
        spec = get_kernel("dscal")
        red_spec = dataclasses.replace(spec, reduction_outputs=("X",))
        k = FKO(p4e).compile(spec.hil, TransformParams(sv=False))
        real_run = tester_mod.run_function

        def perturbed(fn, arrays, scalars=None, **kw):
            result = real_run(fn, arrays, scalars, **kw)
            if len(arrays["X"]) and scalars.get("N"):
                arrays["X"][0] = np.nextafter(arrays["X"][0], np.inf)
            return result

        monkeypatch.setattr(tester_mod, "run_function", perturbed)
        check_function(k.fn, red_spec, sizes=(8,))   # must not raise

    def test_missing_scalar_return_is_hard_failure(self, p4e, ddot_spec,
                                                   monkeypatch):
        # a missing return used to be coerced to 0.0 and silently pass
        # whenever the reference was near zero
        import repro.timing.tester as tester_mod
        k = FKO(p4e).compile(ddot_spec.hil, TransformParams(sv=True))
        real_run = tester_mod.run_function

        def no_ret(fn, arrays, scalars=None, **kw):
            result = real_run(fn, arrays, scalars, **kw)
            result.ret = None
            return result

        monkeypatch.setattr(tester_mod, "run_function", no_ret)
        with pytest.raises(KernelTestFailure, match="returned nothing"):
            check_function(k.fn, ddot_spec, sizes=(0,))

    def test_nan_scalar_return_is_caught(self, p4e, ddot_spec, monkeypatch):
        # NaN disagreement was masked by `rel_err > tol` being False
        import repro.timing.tester as tester_mod
        k = FKO(p4e).compile(ddot_spec.hil, TransformParams(sv=True))
        real_run = tester_mod.run_function

        def nan_ret(fn, arrays, scalars=None, **kw):
            result = real_run(fn, arrays, scalars, **kw)
            result.ret = float("nan")
            return result

        monkeypatch.setattr(tester_mod, "run_function", nan_ret)
        with pytest.raises(KernelTestFailure):
            check_function(k.fn, ddot_spec, sizes=(8,))

    def test_sizes_cover_remainder_cases(self):
        assert 0 in DEFAULT_SIZES and 1 in DEFAULT_SIZES
        assert any(s % 8 not in (0, 1) for s in DEFAULT_SIZES)

    def test_make_inputs_shapes(self, rng):
        spec = get_kernel("daxpy")
        arrays, scalars = make_inputs(spec, 10, rng)
        assert set(arrays) == {"X", "Y"}
        assert arrays["X"].dtype == np.float64
        assert "alpha" in scalars and scalars["N"] == 10

    def test_make_inputs_padded_for_n0(self, rng):
        arrays, _ = make_inputs(get_kernel("sdot"), 0, rng)
        assert len(arrays["X"]) == 1  # interpreter needs an allocation
